package blocking_test

import (
	"testing"

	"affidavit/internal/blocking"
	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

func TestInitialResult(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst)
	if r.NumBlocks() != 1 {
		t.Fatalf("initial blocks = %d, want 1", r.NumBlocks())
	}
	b := r.Blocks()[0]
	if len(b.Src) != 17 || len(b.Tgt) != 16 || !b.Mixed() {
		t.Error("initial block shape wrong")
	}
	if r.TargetSurplus() != 0 {
		t.Errorf("TargetSurplus = %d, want 0", r.TargetSurplus())
	}
	if r.SourceSurplus() != 1 {
		t.Errorf("SourceSurplus = %d, want 1", r.SourceSurplus())
	}
}

// TestFigure3Block reproduces the paper's Figure 3: under state
// H1 = (*,*,*,id,*,x↦'k $',id), the block with κ = (C, 'k $', SAP) contains
// sources {S08, S09, S10} and targets {T08, T10}.
func TestFigure3Block(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst).
		Refine(fixture.Type, metafunc.Identity{}).
		Refine(fixture.Unit, metafunc.Constant{C: "k $"}).
		Refine(fixture.Org, metafunc.Identity{})

	var kappa *blocking.Block
	for _, b := range r.Blocks() {
		if len(b.Src) == 3 && len(b.Tgt) == 2 {
			srcIDs := map[string]bool{}
			for _, s := range b.Src {
				srcIDs[inst.Source.Value(int(s), fixture.ID1)] = true
			}
			if srcIDs["S08"] && srcIDs["S09"] && srcIDs["S10"] {
				kappa = b
			}
		}
	}
	if kappa == nil {
		t.Fatal("Figure 3 block (C, k $, SAP) not found")
	}
	tgtIDs := map[string]bool{}
	for _, ti := range kappa.Tgt {
		tgtIDs[inst.Target.Value(int(ti), fixture.ID1)] = true
	}
	if !tgtIDs["T08"] || !tgtIDs["T10"] || len(tgtIDs) != 2 {
		t.Errorf("Figure 3 block targets = %v, want {T08, T10}", tgtIDs)
	}
}

func TestRefineIsNonDestructive(t *testing.T) {
	inst := fixture.Instance()
	r0 := blocking.New(inst)
	_ = r0.Refine(fixture.Org, metafunc.Identity{})
	if r0.NumBlocks() != 1 {
		t.Error("Refine mutated its receiver")
	}
}

func TestRefinePartitions(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst).
		Refine(fixture.Org, metafunc.Identity{}).
		Refine(fixture.Type, metafunc.Identity{})
	ns, nt := 0, 0
	for _, b := range r.Blocks() {
		ns += len(b.Src)
		nt += len(b.Tgt)
	}
	if ns != inst.Source.Len() || nt != inst.Target.Len() {
		t.Errorf("blocks lost records: %d/%d sources, %d/%d targets",
			ns, inst.Source.Len(), nt, inst.Target.Len())
	}
	// Every record must be findable via its block map.
	for s := 0; s < inst.Source.Len(); s++ {
		found := false
		for _, m := range r.BlockOfSource(s).Src {
			if int(m) == s {
				found = true
			}
		}
		if !found {
			t.Errorf("BlockOfSource(%d) does not contain the record", s)
		}
	}
	for ti := 0; ti < inst.Target.Len(); ti++ {
		found := false
		for _, m := range r.BlockOfTarget(ti).Tgt {
			if int(m) == ti {
				found = true
			}
		}
		if !found {
			t.Errorf("BlockOfTarget(%d) does not contain the record", ti)
		}
	}
}

func TestRefineAppliesSourceFunction(t *testing.T) {
	// Refining Unit with the constant 'k $' must put every source into the
	// same group as the targets (whose Unit is literally 'k $').
	inst := fixture.Instance()
	r := blocking.New(inst).Refine(fixture.Unit, metafunc.Constant{C: "k $"})
	if r.NumBlocks() != 1 {
		t.Fatalf("constant refinement should keep one block, got %d", r.NumBlocks())
	}
	// Refining Unit with identity must separate USD sources from k $ targets.
	r2 := blocking.New(inst).Refine(fixture.Unit, metafunc.Identity{})
	if r2.NumBlocks() != 2 {
		t.Fatalf("identity refinement should split Unit, got %d blocks", r2.NumBlocks())
	}
	if r2.TargetSurplus() != 16 || r2.SourceSurplus() != 17 {
		t.Errorf("surpluses = %d/%d, want 16/17",
			r2.TargetSurplus(), r2.SourceSurplus())
	}
}

func TestSurplusBoundsUnderCorrectFunctions(t *testing.T) {
	// Refining with the full reference tuple yields surpluses equal to the
	// true |T^{E+}| and |S^{E−}| of E1 (end-state coherence, Section 4.5).
	inst := fixture.Instance()
	ref := fixture.ReferenceFuncs()
	r := blocking.New(inst)
	for a := 0; a < inst.NumAttrs(); a++ {
		r = r.Refine(a, ref[a])
	}
	if got := r.TargetSurplus(); got != 3 {
		t.Errorf("TargetSurplus = %d, want |T^{E1+}| = 3", got)
	}
	if got := r.SourceSurplus(); got != 4 {
		t.Errorf("SourceSurplus = %d, want |S^{E1−}| = 4", got)
	}
}

func TestIndeterminacy(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst)
	// One mixed block with 17 sources: indeterminacy of ID1 is 17 distinct
	// values, of Unit is 1, of Org is 4 (IBM, SAP, BASF ×2 spellings? no — 3).
	if got := r.Indeterminacy(fixture.ID1); got != 17 {
		t.Errorf("Indeterminacy(ID1) = %d, want 17", got)
	}
	if got := r.Indeterminacy(fixture.Unit); got != 1 {
		t.Errorf("Indeterminacy(Unit) = %d, want 1", got)
	}
	if got := r.Indeterminacy(fixture.Org); got != 3 {
		t.Errorf("Indeterminacy(Org) = %d, want 3", got)
	}
	// After refining on Org, the max distinct Type count per block drops.
	r2 := r.Refine(fixture.Org, metafunc.Identity{})
	if got := r2.Indeterminacy(fixture.Type); got >= r.Indeterminacy(fixture.Type) {
		t.Errorf("refinement did not reduce Type indeterminacy: %d", got)
	}
}

func TestKeySeparatorSafety(t *testing.T) {
	// Values that would collide under naive concatenation must not merge.
	s := table.MustSchema("a", "b")
	src := table.MustFromRows(s, []table.Record{{"x|", "y"}, {"x", "|y"}})
	tgt := table.MustFromRows(s, []table.Record{{"x|", "y"}})
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := blocking.New(inst).
		Refine(0, metafunc.Identity{}).
		Refine(1, metafunc.Identity{})
	if r.NumBlocks() != 2 {
		t.Errorf("separator collision: %d blocks, want 2", r.NumBlocks())
	}
}

func TestMixedBlocks(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst).Refine(fixture.Unit, metafunc.Identity{})
	if got := len(r.MixedBlocks()); got != 0 {
		t.Errorf("MixedBlocks = %d, want 0 (USD vs k $ separates all)", got)
	}
	r2 := blocking.New(inst).Refine(fixture.Org, metafunc.Identity{})
	if got := len(r2.MixedBlocks()); got != 3 {
		t.Errorf("MixedBlocks = %d, want 3 (IBM, SAP, BASF)", got)
	}
}
