package blocking_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"affidavit/internal/blocking"
	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

// Property: refining on the same attributes in any order produces the same
// partition (blocking is order-independent), verified via the surplus
// statistics and block-count invariants.
func TestQuickRefinementOrderIndependent(t *testing.T) {
	inst := fixture.Instance()
	attrs := []int{fixture.Type, fixture.Org, fixture.Unit, fixture.Date}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(attrs))
		a := blocking.New(inst)
		b := blocking.New(inst)
		for i := range attrs {
			a = a.Refine(attrs[i], metafunc.Identity{})
			b = b.Refine(attrs[perm[i]], metafunc.Identity{})
		}
		return a.NumBlocks() == b.NumBlocks() &&
			a.TargetSurplus() == b.TargetSurplus() &&
			a.SourceSurplus() == b.SourceSurplus()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: refinement never merges blocks — block count is nondecreasing
// and surpluses are nondecreasing (coarser blocking underestimates less).
func TestQuickRefinementMonotone(t *testing.T) {
	inst := fixture.Instance()
	ref := fixture.ReferenceFuncs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(inst.NumAttrs())
		r := blocking.New(inst)
		prevBlocks, prevTS, prevSS := r.NumBlocks(), r.TargetSurplus(), r.SourceSurplus()
		for _, a := range order {
			r = r.Refine(a, ref[a])
			if r.NumBlocks() < prevBlocks || r.TargetSurplus() < prevTS || r.SourceSurplus() < prevSS {
				return false
			}
			prevBlocks, prevTS, prevSS = r.NumBlocks(), r.TargetSurplus(), r.SourceSurplus()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: for random two-column tables, every record lands in exactly one
// block and the blocks partition both sides.
func TestQuickBlocksPartition(t *testing.T) {
	schema := table.MustSchema("a", "b")
	f := func(cells []string, split uint8) bool {
		if len(cells) < 4 {
			return true
		}
		half := int(split)%(len(cells)/2) + 1
		var srcRows, tgtRows []table.Record
		for i := 0; i+1 < len(cells) && i < 2*half; i += 2 {
			srcRows = append(srcRows, table.Record{cells[i], cells[i+1]})
		}
		for i := 1; i+1 < len(cells); i += 2 {
			tgtRows = append(tgtRows, table.Record{cells[i], cells[i+1]})
		}
		if len(srcRows) == 0 || len(tgtRows) == 0 {
			return true
		}
		src := table.MustFromRows(schema, srcRows)
		tgt := table.MustFromRows(schema, tgtRows)
		inst, err := delta.NewInstance(src, tgt, nil)
		if err != nil {
			return false
		}
		r := blocking.New(inst).
			Refine(0, metafunc.Identity{}).
			Refine(1, metafunc.Identity{})
		ns, nt := 0, 0
		for _, b := range r.Blocks() {
			ns += len(b.Src)
			nt += len(b.Tgt)
		}
		return ns == src.Len() && nt == tgt.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
