package blocking_test

import (
	"testing"

	"affidavit/internal/blocking"
	"affidavit/internal/metafunc"
)

// BenchmarkRefineHugeBlock measures partitioned refinement of one huge
// low-cardinality block — the shape that dominates early search — against
// the sequential path. On multi-core hosts par/seq shows the partitioning
// speedup; on one core the two roughly coincide (bounded bookkeeping
// overhead).
func BenchmarkRefineHugeBlock(b *testing.B) {
	inst := bigInstance(b, 400000)
	for _, engine := range []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{"par8", 8},
	} {
		b.Run(engine.name, func(b *testing.B) {
			r := blocking.New(inst).WithWorkers(engine.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Refine(1, metafunc.Identity{})
			}
		})
	}
}
