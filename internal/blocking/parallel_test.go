package blocking_test

import (
	"fmt"
	"math/rand"
	"testing"

	"affidavit/internal/blocking"
	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

func add7() metafunc.Func {
	f, err := metafunc.NewAdd("7")
	if err != nil {
		panic(err)
	}
	return f
}

// bigInstance builds an instance whose root block comfortably exceeds the
// parallel-refinement threshold, with skewed cardinalities so chunks see
// both repeated and novel split codes.
func bigInstance(t testing.TB, rows int) *delta.Instance {
	t.Helper()
	schema := table.MustSchema("hi", "lo", "num")
	rng := rand.New(rand.NewSource(5))
	rec := func() table.Record {
		return table.Record{
			fmt.Sprintf("v%d", rng.Intn(rows/2)), // high cardinality
			fmt.Sprintf("g%d", rng.Intn(7)),      // low cardinality
			fmt.Sprintf("%d", rng.Intn(1000)),
		}
	}
	src := table.New(schema)
	tgt := table.New(schema)
	for i := 0; i < rows; i++ {
		r := rec()
		if err := src.Append(r); err != nil {
			t.Fatal(err)
		}
		// Most targets mirror a transformed source record; some are fresh.
		if rng.Intn(10) == 0 {
			r = rec()
		}
		r = r.Clone()
		r[2] = add7().Apply(r[2])
		if err := tgt.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func assertSameBlocking(t *testing.T, label string, a, b *blocking.Result) {
	t.Helper()
	ab, bb := a.Blocks(), b.Blocks()
	if len(ab) != len(bb) {
		t.Fatalf("%s: %d vs %d blocks", label, len(ab), len(bb))
	}
	for i := range ab {
		if !equalInt32(ab[i].Src, bb[i].Src) || !equalInt32(ab[i].Tgt, bb[i].Tgt) {
			t.Fatalf("%s: block %d differs", label, i)
		}
	}
	for s := 0; s < a.Instance().Source.Len(); s++ {
		if a.BlockOfSource(s) != ab[indexOf(ab, b.BlockOfSource(s), bb)] {
			t.Fatalf("%s: source %d mapped to different blocks", label, s)
		}
	}
}

func indexOf(in []*blocking.Block, want *blocking.Block, from []*blocking.Block) int {
	for i, b := range from {
		if b == want {
			return i
		}
	}
	return -1
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelRefineEquivalence: partitioned refinement produces
// byte-identical blocking results — same block order, same record order
// within blocks, same record→block maps — for every worker count and for
// chained refinements whose intermediate blocks straddle the threshold.
func TestParallelRefineEquivalence(t *testing.T) {
	inst := bigInstance(t, 40000)
	seqRoot := blocking.New(inst)
	refine := func(r *blocking.Result) []*blocking.Result {
		a := r.Refine(2, add7())              // splits off the numeric shift
		b := a.Refine(1, metafunc.Identity{}) // big blocks survive (7 groups)
		c := b.Refine(0, metafunc.Identity{}) // shatters into small blocks
		d := c.Refine(2, metafunc.Upper{})    // no-op on digits, keeps blocks
		return []*blocking.Result{a, b, c, d}
	}
	want := refine(seqRoot)
	for _, workers := range []int{2, 3, 8, 32} {
		got := refine(blocking.New(inst).WithWorkers(workers))
		for i := range want {
			assertSameBlocking(t, fmt.Sprintf("workers=%d step %d", workers, i), want[i], got[i])
		}
	}
}

// TestParallelRefineSurplus: the cost bounds derived from a parallel
// refinement match the sequential ones.
func TestParallelRefineSurplus(t *testing.T) {
	inst := bigInstance(t, 20000)
	seq := blocking.New(inst).Refine(1, metafunc.Identity{})
	par := blocking.New(inst).WithWorkers(8).Refine(1, metafunc.Identity{})
	if seq.TargetSurplus() != par.TargetSurplus() {
		t.Errorf("target surplus %d vs %d", seq.TargetSurplus(), par.TargetSurplus())
	}
	if seq.SourceSurplus() != par.SourceSurplus() {
		t.Errorf("source surplus %d vs %d", seq.SourceSurplus(), par.SourceSurplus())
	}
	for a := 0; a < inst.NumAttrs(); a++ {
		if seq.Indeterminacy(a) != par.Indeterminacy(a) {
			t.Errorf("attr %d: indeterminacy %d vs %d", a, seq.Indeterminacy(a), par.Indeterminacy(a))
		}
	}
}
