package blocking

import "sync"

// codeTable is an open-addressing map from non-negative int32 split codes
// to int32 sub-block indices, replacing map[int32]int32 in the refinement
// hot path. Keys are stored as code+1 so the zero value marks an empty slot
// and a full reset is a memclr; inserted slot positions are additionally
// tracked so resetting a sparsely used table touches only the dirty slots
// instead of the whole backing array (many tiny parent blocks late in a
// search would otherwise pay a full clear each).
type codeTable struct {
	keys    []int32 // code+1; 0 = empty
	vals    []int32
	touched []uint32 // slot positions of live entries
	mask    uint32
	n       int
}

// getOrInsert returns the value stored for code c; on first sight it stores
// val and returns it. found reports whether c was already present.
func (t *codeTable) getOrInsert(c, val int32) (idx int32, found bool) {
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	k := c + 1
	i := (uint32(c) * 0x9E3779B9) & t.mask
	for {
		switch t.keys[i] {
		case 0:
			t.keys[i] = k
			t.vals[i] = val
			t.touched = append(t.touched, i)
			t.n++
			return val, false
		case k:
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table (min 16 slots) and rehashes live entries.
func (t *codeTable) grow() {
	size := 2 * len(t.keys)
	if size < 16 {
		size = 16
	}
	keys := make([]int32, size)
	vals := make([]int32, size)
	touched := t.touched[:0]
	if cap(touched) < t.n {
		touched = make([]uint32, 0, size)
	}
	mask := uint32(size - 1)
	for _, i := range t.touched {
		k := t.keys[i]
		j := (uint32(k-1) * 0x9E3779B9) & mask
		for keys[j] != 0 {
			j = (j + 1) & mask
		}
		keys[j] = k
		vals[j] = t.vals[i]
		touched = append(touched, j)
	}
	t.keys, t.vals, t.touched, t.mask = keys, vals, touched, mask
}

// reset empties the table, keeping its capacity.
func (t *codeTable) reset() {
	if 4*len(t.touched) < len(t.keys) {
		for _, i := range t.touched {
			t.keys[i] = 0
		}
	} else {
		clear(t.keys)
	}
	t.touched = t.touched[:0]
	t.n = 0
}

// countScratch is the pooled working set of a counting-only refinement
// pass: the per-parent split table and the per-sub-block record counts.
// Instances are handed out by countPool and must be reset per parent block
// (reset happens at acquisition points); nothing in a scratch may outlive
// the countRefine call that borrowed it.
type countScratch struct {
	tab  codeTable
	cntS []int32
	cntT []int32
}

var countPool = sync.Pool{New: func() any { return new(countScratch) }}
