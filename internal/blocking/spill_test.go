package blocking_test

import (
	"fmt"
	"testing"

	"affidavit/internal/blocking"
	"affidavit/internal/metafunc"
	"affidavit/internal/spill"
)

// TestExternalGroupingEquivalence: a budget tiny enough that every
// refinement of a high-cardinality attribute groups through disk
// partitions produces byte-identical blocking results — same block order,
// record order and record→block maps — to the in-memory path, alone and
// combined with worker partitioning.
func TestExternalGroupingEquivalence(t *testing.T) {
	inst := bigInstance(t, 30000)
	refine := func(r *blocking.Result) []*blocking.Result {
		a := r.Refine(0, metafunc.Identity{}) // key-like: huge group table
		b := a.Refine(2, add7())
		c := r.Refine(1, metafunc.Identity{}) // low cardinality: in-memory even under budget
		d := c.Refine(0, metafunc.Identity{})
		return []*blocking.Result{a, b, c, d}
	}
	want := refine(blocking.New(inst))
	for _, budget := range []int64{1 << 12, 1 << 16, 1 << 20} {
		m := spill.NewManager(budget, t.TempDir())
		st := &spill.Stats{}
		got := refine(blocking.New(inst).WithSpill(m, st))
		for i := range want {
			assertSameBlocking(t, fmt.Sprintf("budget=%d step %d", budget, i), want[i], got[i])
		}
		if st.Bytes() == 0 {
			t.Fatalf("budget=%d: no spill activity on a high-cardinality refinement", budget)
		}
		if st.Partitions() == 0 {
			t.Fatalf("budget=%d: no partitions recorded", budget)
		}
		gotPar := refine(blocking.New(inst).WithSpill(m, st).WithWorkers(4))
		for i := range want {
			assertSameBlocking(t, fmt.Sprintf("budget=%d+workers step %d", budget, i), want[i], gotPar[i])
		}
	}
}

// TestExternalGroupingSurplus: cost bounds from an externally grouped
// refinement match the in-memory ones.
func TestExternalGroupingSurplus(t *testing.T) {
	inst := bigInstance(t, 15000)
	m := spill.NewManager(1<<14, t.TempDir())
	seq := blocking.New(inst).Refine(0, metafunc.Identity{})
	ext := blocking.New(inst).WithSpill(m, &spill.Stats{}).Refine(0, metafunc.Identity{})
	if seq.TargetSurplus() != ext.TargetSurplus() {
		t.Errorf("target surplus %d vs %d", seq.TargetSurplus(), ext.TargetSurplus())
	}
	if seq.SourceSurplus() != ext.SourceSurplus() {
		t.Errorf("source surplus %d vs %d", seq.SourceSurplus(), ext.SourceSurplus())
	}
	for a := 0; a < inst.NumAttrs(); a++ {
		if seq.Indeterminacy(a) != ext.Indeterminacy(a) {
			t.Errorf("attr %d: indeterminacy %d vs %d", a, seq.Indeterminacy(a), ext.Indeterminacy(a))
		}
	}
}
