// Package blocking implements the blocking index ξ_H and blocking result
// Φ_H of Definitions 4.3–4.4: under a search state, source and target
// records are grouped by their projection onto the decided attributes, with
// the decided attribute functions applied to source values during
// projection. Results refine incrementally — deciding one more attribute
// splits each existing block — which is how the search extends states
// without recomputing blocking from scratch.
//
// The implementation runs on the instance's interned columnar view: blocks
// are keyed by dense value-code tuples, and each attribute function is
// evaluated at most once per distinct value of its attribute for the whole
// refinement tree (the apply memo is shared across all Results derived from
// one New call, and is safe for concurrent Refines).
package blocking

import (
	"context"
	"sync"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/spill"
)

// Block is one ϕ(κ): the source and target records sharing blocking index
// κ. κ itself is implicit — refinement groups records by interned
// value-code tuples, so a block is identified by (parent block, split
// code) without materialising the key. Render κ for debugging by reading
// any member record's decided-attribute values through the instance.
type Block struct {
	Src []int32 // source record indices
	Tgt []int32 // target record indices
}

// Mixed reports whether the block has records on both sides; only mixed
// blocks can contribute alignment examples.
func (b *Block) Mixed() bool { return len(b.Src) > 0 && len(b.Tgt) > 0 }

// applyMemo caches, for one (attribute, function) pair, the output code of
// every raw input code of that attribute. It is immutable once built.
type applyMemo []int32

// applyCache shares applyMemos across every Result of one refinement tree:
// refining different sibling or cousin states with the same (attr, func)
// reuses the memo instead of re-applying the function value by value.
type applyCache struct {
	mu    sync.Mutex
	memos map[applyKey]applyMemo
}

type applyKey struct {
	attr int
	fn   string
}

// memo returns the (attr, f) memo, building it on first use. Building
// interns novel function outputs, so distinct outputs always get distinct
// codes and outputs equal to target values collide with them — exactly the
// grouping semantics of string comparison, at integer cost.
//
// Explicit value mappings are built transiently instead of cached: every
// greedy-map probe constructs a fresh alignment-specific *Mapping that is
// refined exactly once, so caching those memos (keyed by the mapping's full
// entry list) would only grow the cache for a ~0% hit rate.
func (c *applyCache) memo(co *delta.Coded, attr int, f metafunc.Func) applyMemo {
	if _, oneShot := f.(*metafunc.Mapping); oneShot {
		return buildMemo(co, attr, f)
	}
	key := applyKey{attr: attr, fn: f.Key()}
	c.mu.Lock()
	m, ok := c.memos[key]
	c.mu.Unlock()
	if ok {
		return m
	}
	built := buildMemo(co, attr, f)
	// Two goroutines may build concurrently; both results are identical
	// mappings (interning is idempotent), so either may win.
	c.mu.Lock()
	if m, ok = c.memos[key]; !ok {
		c.memos[key] = built
		m = built
	}
	c.mu.Unlock()
	return m
}

// buildMemo fills entries only for codes present in the pair's columns —
// the only codes a refinement can read — so per-memo apply/intern work is
// bounded by the pair's value set, not by how much a long-lived dictionary
// pool has accumulated.
func buildMemo(co *delta.Coded, attr int, f metafunc.Func) applyMemo {
	dict := co.Dicts[attr]
	built := make(applyMemo, co.Base[attr])
	if metafunc.IsIdentity(f) {
		for _, c := range co.Present[attr] {
			built[c] = c
		}
	} else {
		for _, c := range co.Present[attr] {
			built[c] = dict.Code(f.Apply(dict.Value(c)))
		}
	}
	return built
}

// Result is Φ_H plus the record→block maps needed for refinement and for
// locating the block of a sampled record.
//
// Results are refined lazily: Refine runs only a counting pass — enough to
// compute the surpluses that cost a search state — and defers building the
// block lists and record→block maps until an accessor actually needs them
// (force). The search discards the vast majority of candidate refinements
// on cost alone, so most Results never materialise.
type Result struct {
	inst       *delta.Instance
	coded      *delta.Coded
	cache      *applyCache
	blocks     []*Block
	srcBlockOf []int32
	tgtBlockOf []int32
	mixed      []*Block        // blocks with records on both sides (cached)
	tSur, sSur int             // c_t(H), c_s(H), computed at Refine time
	workers    int             // ≤ 1 = fully sequential refinement
	ctx        context.Context // nil = never cancelled
	spillM     *spill.Manager  // nil/inactive = always group in memory
	spillSt    *spill.Stats    // spill accounting sink (may be nil)
	lazy       *lazyRefine     // pending materialisation; nil once forced
}

// lazyRefine holds a deferred refinement. It lives behind a pointer so
// Result copies (WithWorkers and friends) share the once.
type lazyRefine struct {
	once   sync.Once
	parent *Result
	attr   int
	fn     metafunc.Func
}

// New returns the blocking result of the all-undecided state: a single
// block holding every record.
func New(inst *delta.Instance) *Result {
	b := &Block{}
	b.Src = make([]int32, inst.Source.Len())
	for i := range b.Src {
		b.Src[i] = int32(i)
	}
	b.Tgt = make([]int32, inst.Target.Len())
	for i := range b.Tgt {
		b.Tgt[i] = int32(i)
	}
	r := &Result{
		inst:       inst,
		coded:      inst.Coded(),
		cache:      &applyCache{memos: make(map[applyKey]applyMemo)},
		blocks:     []*Block{b},
		srcBlockOf: make([]int32, inst.Source.Len()),
		tgtBlockOf: make([]int32, inst.Target.Len()),
	}
	if d := len(b.Tgt) - len(b.Src); d > 0 {
		r.tSur = d
	} else {
		r.sSur = -d
	}
	if b.Mixed() {
		r.mixed = r.blocks
	}
	return r
}

// WithWorkers returns a result whose refinements — and those of every
// result derived from it — may partition very large blocks across up to n
// goroutines. n ≤ 1 returns the receiver unchanged. The parallel and
// sequential refinement paths produce byte-identical results.
func (r *Result) WithWorkers(n int) *Result {
	if n <= 1 || n == r.workers {
		return r
	}
	r.force() // copies must not share a pending materialisation
	nr := *r
	nr.workers = n
	return &nr
}

// WithContext returns a result whose refinements — and those of every
// result derived from it — observe ctx: Refine called after ctx is
// cancelled returns the receiver unchanged instead of splitting blocks, so
// a cancelled search never pays for another O(|S|+|T|) grouping pass.
// Callers above the search layer discard states refined under a cancelled
// context, so the stale blocking is never acted on. A nil ctx returns the
// receiver unchanged.
func (r *Result) WithContext(ctx context.Context) *Result {
	if ctx == nil {
		return r
	}
	r.force()
	nr := *r
	nr.ctx = ctx
	return &nr
}

// WithSpill returns a result whose refinements — and those of every result
// derived from it — group externally whenever one parent block's in-memory
// group table would exceed the manager's share of the memory budget: the
// block's (position, split code) tuples are hash-partitioned to a temp
// file and grouped one partition at a time (grace-hash grouping). The
// budget governs the grouping's *working set* — only one partition's hash
// table is ever resident; flat O(distinct) metadata (per-group counts,
// first positions, and the refined Result's own block arrays) remains,
// because it IS the refinement's output. In practice that trades ~48
// bytes of hash-table entry per distinct split code for disk I/O plus
// ~32 bytes of flat arrays. The external and in-memory paths produce
// byte-identical results; spilled volume is recorded into st (which may
// be nil). An inactive manager returns the receiver unchanged.
func (r *Result) WithSpill(m *spill.Manager, st *spill.Stats) *Result {
	if !m.Active() {
		return r
	}
	r.force()
	nr := *r
	nr.spillM = m
	nr.spillSt = st
	return &nr
}

// parallelBlockMin is the record count at which Refine partitions one
// block's grouping across goroutines. Below it the per-chunk bookkeeping
// outweighs the hash work; above it one huge block (the common shape early
// in a search, when few attributes are decided) scales with cores instead
// of serialising a whole refinement.
const parallelBlockMin = 1 << 14

// Refine returns the blocking result after additionally deciding attribute
// attr with function f: each block splits by f(source value) on the source
// side and the raw value on the target side. The receiver is unchanged.
// Refine is safe to call concurrently on the same receiver; the resulting
// blocks are ordered deterministically (parent-block order, then first
// appearance in record order) regardless of WithWorkers.
//
// Without an active spill manager the returned result is lazy: only the
// counting pass has run (enough for TargetSurplus and SourceSurplus), and
// the block lists materialise on first access. Under a spill manager the
// full refinement runs eagerly so the grouping honours — and is accounted
// against — the memory budget at the moment the search creates the state.
func (r *Result) Refine(attr int, f metafunc.Func) *Result {
	if r.ctx != nil && r.ctx.Err() != nil {
		// Cancelled: skip the grouping pass entirely. The receiver is a
		// valid (coarser) result; the search layer is about to abandon any
		// state built from it.
		return r
	}
	r.force()
	if r.spillM != nil {
		return r.refineEager(attr, f)
	}
	nr := &Result{
		inst:    r.inst,
		coded:   r.coded,
		cache:   r.cache,
		workers: r.workers,
		ctx:     r.ctx,
		lazy:    &lazyRefine{parent: r, attr: attr, fn: f},
	}
	nr.tSur, nr.sSur = r.countRefine(attr, f)
	return nr
}

// countRefine runs the counting-only half of a refinement: per parent
// block, count source and target records per split code and accumulate the
// block surpluses. It allocates nothing beyond pooled scratch.
func (r *Result) countRefine(attr int, f metafunc.Func) (tSur, sSur int) {
	memo := r.cache.memo(r.coded, attr, f)
	srcCodes, tgtCodes := r.coded.Src[attr], r.coded.Tgt[attr]
	sc := countPool.Get().(*countScratch)
	for _, b := range r.blocks {
		sc.tab.reset()
		cntS, cntT := sc.cntS[:0], sc.cntT[:0]
		for _, s := range b.Src {
			idx, ok := sc.tab.getOrInsert(memo[srcCodes[s]], int32(len(cntS)))
			if !ok {
				cntS = append(cntS, 0)
				cntT = append(cntT, 0)
			}
			cntS[idx]++
		}
		for _, t := range b.Tgt {
			idx, ok := sc.tab.getOrInsert(tgtCodes[t], int32(len(cntS)))
			if !ok {
				cntS = append(cntS, 0)
				cntT = append(cntT, 0)
			}
			cntT[idx]++
		}
		for i := range cntS {
			if d := int(cntT[i] - cntS[i]); d > 0 {
				tSur += d
			} else {
				sSur -= d
			}
		}
		sc.cntS, sc.cntT = cntS, cntT
	}
	countPool.Put(sc)
	return tSur, sSur
}

// force materialises a lazily refined result: the full grouping pass plus
// the block-list build. Safe for concurrent callers; no-op once done.
func (r *Result) force() {
	l := r.lazy
	if l == nil {
		return
	}
	l.once.Do(func() {
		p := l.parent
		g := p.newGrouper(l.attr, l.fn)
		distinct := p.coded.Dicts[l.attr].Len()
		for _, b := range p.blocks {
			n := len(b.Src) + len(b.Tgt)
			if p.workers > 1 && n >= parallelBlockMin && distinct*8 <= n {
				g.groupParallel(b, p.workers)
			} else {
				g.group(b)
			}
		}
		r.finishRefine(p, g)
		// r.lazy stays set: concurrent force callers synchronise on the
		// once, and accessors never read the materialised fields directly.
	})
}

// refineEager runs the full refinement immediately, routing oversized
// blocks through external grouping when the spill budget demands it.
func (r *Result) refineEager(attr int, f metafunc.Func) *Result {
	g := r.newGrouper(attr, f)
	// Partitioning pays off only for low-cardinality splits: the merge
	// touches every distinct (chunk, split code) pair sequentially, so when
	// nearly every record carries a distinct code (key-like attributes) the
	// merge would redo the whole grouping. The dictionary size bounds the
	// distinct split codes cheaply.
	distinct := r.coded.Dicts[attr].Len()
	for _, b := range r.blocks {
		n := len(b.Src) + len(b.Tgt)
		// est bounds the block's group-table memory: one entry (~48
		// bytes) per distinct split code, itself bounded by both the block
		// size and the attribute's dictionary.
		est := int64(distinct)
		if int64(n) < est {
			est = int64(n)
		}
		est *= 48
		if r.spillM.ShouldSpillGroup(est) {
			if g.groupExternal(b, r.spillM, r.spillSt, est) == nil {
				continue
			}
			// Disk trouble: the budget is advisory — fall through to the
			// in-memory path rather than fail the refinement.
		}
		if r.workers > 1 && n >= parallelBlockMin && distinct*8 <= n {
			g.groupParallel(b, r.workers)
		} else {
			g.group(b)
		}
	}
	nr := &Result{
		inst:    r.inst,
		coded:   r.coded,
		cache:   r.cache,
		workers: r.workers,
		ctx:     r.ctx,
		spillM:  r.spillM,
		spillSt: r.spillSt,
	}
	nr.finishRefine(r, g)
	for i := range g.cntS {
		if d := int(g.cntT[i] - g.cntS[i]); d > 0 {
			nr.tSur += d
		} else {
			nr.sSur -= d
		}
	}
	return nr
}

// newGrouper prepares the grouping pass over the receiver's blocks.
func (r *Result) newGrouper(attr int, f metafunc.Func) *grouper {
	return &grouper{
		memo:       r.cache.memo(r.coded, attr, f),
		srcCodes:   r.coded.Src[attr],
		tgtCodes:   r.coded.Tgt[attr],
		srcBlockOf: make([]int32, len(r.srcBlockOf)),
		tgtBlockOf: make([]int32, len(r.tgtBlockOf)),
	}
}

// finishRefine is pass 2 of a refinement: carve exactly-sized record
// slices out of two shared backing arrays and fill them in the parent
// iteration order, then cache the mixed-block list.
func (r *Result) finishRefine(p *Result, g *grouper) {
	nSrc, nTgt := len(p.srcBlockOf), len(p.tgtBlockOf)
	arena := make([]Block, len(g.codes))
	blocks := make([]*Block, len(g.codes))
	srcStore := make([]int32, 0, nSrc)
	tgtStore := make([]int32, 0, nTgt)
	for i := range arena {
		off := len(srcStore)
		srcStore = srcStore[:off+int(g.cntS[i])]
		arena[i].Src = srcStore[off:off:len(srcStore)]
		off = len(tgtStore)
		tgtStore = tgtStore[:off+int(g.cntT[i])]
		arena[i].Tgt = tgtStore[off:off:len(tgtStore)]
		blocks[i] = &arena[i]
	}
	for _, b := range p.blocks {
		for _, s := range b.Src {
			nb := blocks[g.srcBlockOf[s]]
			nb.Src = append(nb.Src, s)
		}
		for _, t := range b.Tgt {
			nb := blocks[g.tgtBlockOf[t]]
			nb.Tgt = append(nb.Tgt, t)
		}
	}
	r.blocks = blocks
	r.srcBlockOf = g.srcBlockOf
	r.tgtBlockOf = g.tgtBlockOf
	mixed := make([]*Block, 0, len(blocks)/2)
	for _, b := range blocks {
		if b.Mixed() {
			mixed = append(mixed, b)
		}
	}
	r.mixed = mixed
}

// grouper carries the state of Refine's grouping pass: the global sub-block
// tables plus the per-parent split map.
type grouper struct {
	memo               applyMemo
	srcCodes, tgtCodes []int32
	srcBlockOf         []int32
	tgtBlockOf         []int32
	codes              []int32 // split code per sub-block
	cntS, cntT         []int32
	sub                codeTable // split code → sub-block index, per parent
}

// get returns the sub-block index of split code c within the current
// parent, assigning the next global index on first sight.
func (g *grouper) get(c int32) int32 {
	idx, found := g.sub.getOrInsert(c, int32(len(g.codes)))
	if !found {
		g.codes = append(g.codes, c)
		g.cntS = append(g.cntS, 0)
		g.cntT = append(g.cntT, 0)
	}
	return idx
}

// group splits one parent block sequentially.
func (g *grouper) group(b *Block) {
	g.sub.reset()
	for _, s := range b.Src {
		idx := g.get(g.memo[g.srcCodes[s]])
		g.cntS[idx]++
		g.srcBlockOf[s] = idx
	}
	for _, t := range b.Tgt {
		idx := g.get(g.tgtCodes[t])
		g.cntT[idx]++
		g.tgtBlockOf[t] = idx
	}
}

// refineChunk is one contiguous range of a parent block's scan order with
// its chunk-local grouping tables.
type refineChunk struct {
	src, tgt []int32 // sub-ranges of the parent's record lists
	order    []int32 // distinct split codes in first-appearance order
	cntS     []int32 // records per local sub-block
	cntT     []int32
	remap    []int32 // local sub-block index → global index
}

// groupParallel splits one huge parent block with partitioned record
// ranges. The sequential scan order is all of b.Src followed by all of
// b.Tgt; chunks are contiguous ranges of that concatenation, so merging the
// chunk-local first-appearance orders in chunk order reproduces the
// sequential sub-block numbering exactly:
//
//  1. (parallel) each chunk groups its records into chunk-local sub-blocks,
//     parking the local index of every record in the global blockOf arrays
//     (records are disjoint across chunks, so the writes never race);
//  2. (sequential) chunk tables merge in chunk order into the global
//     numbering, summing counts and recording a local→global remap;
//  3. (parallel) every parked local index is rewritten to its global one.
//
// Only the map-heavy grouping work runs concurrently; the merge touches one
// entry per distinct (chunk, split code) pair, not one per record.
func (g *grouper) groupParallel(b *Block, workers int) {
	total := len(b.Src) + len(b.Tgt)
	chunkLen := (total + workers - 1) / workers
	if chunkLen < parallelBlockMin/4 {
		chunkLen = parallelBlockMin / 4
	}
	var chunks []*refineChunk
	for off := 0; off < total; off += chunkLen {
		end := off + chunkLen
		if end > total {
			end = total
		}
		ck := &refineChunk{}
		if off < len(b.Src) {
			sEnd := end
			if sEnd > len(b.Src) {
				sEnd = len(b.Src)
			}
			ck.src = b.Src[off:sEnd]
		}
		if end > len(b.Src) {
			tOff := off - len(b.Src)
			if tOff < 0 {
				tOff = 0
			}
			ck.tgt = b.Tgt[tOff : end-len(b.Src)]
		}
		chunks = append(chunks, ck)
	}

	runChunks := func(task func(*refineChunk)) {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, ck := range chunks {
			wg.Add(1)
			sem <- struct{}{}
			go func(ck *refineChunk) {
				defer func() {
					<-sem
					wg.Done()
				}()
				task(ck)
			}(ck)
		}
		wg.Wait()
	}

	// Phase 1: chunk-local grouping.
	runChunks(func(ck *refineChunk) {
		var local codeTable
		get := func(c int32) int32 {
			idx, found := local.getOrInsert(c, int32(len(ck.order)))
			if !found {
				ck.order = append(ck.order, c)
				ck.cntS = append(ck.cntS, 0)
				ck.cntT = append(ck.cntT, 0)
			}
			return idx
		}
		for _, s := range ck.src {
			idx := get(g.memo[g.srcCodes[s]])
			ck.cntS[idx]++
			g.srcBlockOf[s] = idx
		}
		for _, t := range ck.tgt {
			idx := get(g.tgtCodes[t])
			ck.cntT[idx]++
			g.tgtBlockOf[t] = idx
		}
	})

	// Phase 2: deterministic merge in chunk order.
	g.sub.reset()
	for _, ck := range chunks {
		ck.remap = make([]int32, len(ck.order))
		for li, c := range ck.order {
			gi := g.get(c)
			ck.remap[li] = gi
			g.cntS[gi] += ck.cntS[li]
			g.cntT[gi] += ck.cntT[li]
		}
	}

	// Phase 3: rewrite parked local indices to global ones.
	runChunks(func(ck *refineChunk) {
		for _, s := range ck.src {
			g.srcBlockOf[s] = ck.remap[g.srcBlockOf[s]]
		}
		for _, t := range ck.tgt {
			g.tgtBlockOf[t] = ck.remap[g.tgtBlockOf[t]]
		}
	})
}

// Instance returns the problem instance the result was built over.
func (r *Result) Instance() *delta.Instance { return r.inst }

// Coded returns the instance's interned columnar view (shared, not copied).
func (r *Result) Coded() *delta.Coded { return r.coded }

// Blocks returns all blocks; callers must not mutate them.
func (r *Result) Blocks() []*Block {
	r.force()
	return r.blocks
}

// NumBlocks returns |Ξ_H|.
func (r *Result) NumBlocks() int {
	r.force()
	return len(r.blocks)
}

// MixedBlocks returns the blocks containing both source and target records;
// callers must not mutate the shared slice.
func (r *Result) MixedBlocks() []*Block {
	r.force()
	return r.mixed
}

// BlockOfSource returns the block containing source record s.
func (r *Result) BlockOfSource(s int) *Block {
	r.force()
	return r.blocks[r.srcBlockOf[s]]
}

// BlockOfTarget returns the block containing target record t.
func (r *Result) BlockOfTarget(t int) *Block {
	r.force()
	return r.blocks[r.tgtBlockOf[t]]
}

// TargetSurplus returns c_t(H) = Σ_{|ϕT(κ)| > |ϕS(κ)|} |ϕT(κ)| − |ϕS(κ)|,
// the lower bound on |T^{E+}| (Section 4.5). Computed during the counting
// pass, so it never forces materialisation.
func (r *Result) TargetSurplus() int { return r.tSur }

// SourceSurplus returns c_s(H), the lower bound on |S^{E−}|.
func (r *Result) SourceSurplus() int { return r.sSur }

// Indeterminacy estimates how undetermined attribute attr still is: the
// maximum number of distinct source values of attr over all mixed blocks —
// an upper bound for the number of source values that must be considered as
// the origin of a target value (Section 4.3 "Extending Search States").
func (r *Result) Indeterminacy(attr int) int {
	r.force()
	max := 0
	srcCodes := r.coded.Src[attr]
	// Raw source codes are dense in [0, Base[attr]), so distinct counting
	// is an epoch-marked array walk instead of hashing.
	seen := make([]int32, r.coded.Base[attr])
	epoch := int32(0)
	for _, b := range r.blocks {
		if !b.Mixed() {
			continue
		}
		epoch++
		n := 0
		for _, s := range b.Src {
			if c := srcCodes[s]; seen[c] != epoch {
				seen[c] = epoch
				n++
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}
