// Package blocking implements the blocking index ξ_H and blocking result
// Φ_H of Definitions 4.3–4.4: under a search state, source and target
// records are grouped by their projection onto the decided attributes, with
// the decided attribute functions applied to source values during
// projection. Results refine incrementally — deciding one more attribute
// splits each existing block — which is how the search extends states
// without recomputing blocking from scratch.
package blocking

import (
	"fmt"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
)

// Block is one ϕ(κ): the source and target records sharing blocking index κ.
type Block struct {
	Key string  // κ, rendered as the concatenated decided-attribute values
	Src []int32 // source record indices
	Tgt []int32 // target record indices
}

// Mixed reports whether the block has records on both sides; only mixed
// blocks can contribute alignment examples.
func (b *Block) Mixed() bool { return len(b.Src) > 0 && len(b.Tgt) > 0 }

// Result is Φ_H plus the record→block maps needed for refinement and for
// locating the block of a sampled record.
type Result struct {
	inst       *delta.Instance
	blocks     []*Block
	srcBlockOf []int32
	tgtBlockOf []int32
}

// New returns the blocking result of the all-undecided state: a single
// block holding every record.
func New(inst *delta.Instance) *Result {
	b := &Block{Key: ""}
	b.Src = make([]int32, inst.Source.Len())
	for i := range b.Src {
		b.Src[i] = int32(i)
	}
	b.Tgt = make([]int32, inst.Target.Len())
	for i := range b.Tgt {
		b.Tgt[i] = int32(i)
	}
	r := &Result{
		inst:       inst,
		blocks:     []*Block{b},
		srcBlockOf: make([]int32, inst.Source.Len()),
		tgtBlockOf: make([]int32, inst.Target.Len()),
	}
	return r
}

// Refine returns the blocking result after additionally deciding attribute
// attr with function f: each block splits by f(source value) on the source
// side and the raw value on the target side. The receiver is unchanged.
func (r *Result) Refine(attr int, f metafunc.Func) *Result {
	nr := &Result{
		inst:       r.inst,
		srcBlockOf: make([]int32, len(r.srcBlockOf)),
		tgtBlockOf: make([]int32, len(r.tgtBlockOf)),
	}
	// Value-level memoisation: attributes typically have far fewer distinct
	// values than records, and Func.Apply can be non-trivial (decimal math).
	applied := make(map[string]string)
	apply := func(v string) string {
		if out, ok := applied[v]; ok {
			return out
		}
		out := f.Apply(v)
		applied[v] = out
		return out
	}
	for _, b := range r.blocks {
		sub := make(map[string]*Block)
		get := func(v string) *Block {
			nb, ok := sub[v]
			if !ok {
				nb = &Block{Key: b.Key + quote(v)}
				sub[v] = nb
				nr.blocks = append(nr.blocks, nb)
			}
			return nb
		}
		for _, s := range b.Src {
			v := apply(r.inst.Source.Value(int(s), attr))
			nb := get(v)
			nb.Src = append(nb.Src, s)
		}
		for _, t := range b.Tgt {
			v := r.inst.Target.Value(int(t), attr)
			nb := get(v)
			nb.Tgt = append(nb.Tgt, t)
		}
	}
	for i, b := range nr.blocks {
		for _, s := range b.Src {
			nr.srcBlockOf[s] = int32(i)
		}
		for _, t := range b.Tgt {
			nr.tgtBlockOf[t] = int32(i)
		}
	}
	return nr
}

func quote(s string) string { return fmt.Sprintf("%d:%s|", len(s), s) }

// Instance returns the problem instance the result was built over.
func (r *Result) Instance() *delta.Instance { return r.inst }

// Blocks returns all blocks; callers must not mutate them.
func (r *Result) Blocks() []*Block { return r.blocks }

// NumBlocks returns |Ξ_H|.
func (r *Result) NumBlocks() int { return len(r.blocks) }

// MixedBlocks returns the blocks containing both source and target records.
func (r *Result) MixedBlocks() []*Block {
	var out []*Block
	for _, b := range r.blocks {
		if b.Mixed() {
			out = append(out, b)
		}
	}
	return out
}

// BlockOfSource returns the block containing source record s.
func (r *Result) BlockOfSource(s int) *Block { return r.blocks[r.srcBlockOf[s]] }

// BlockOfTarget returns the block containing target record t.
func (r *Result) BlockOfTarget(t int) *Block { return r.blocks[r.tgtBlockOf[t]] }

// TargetSurplus computes c_t(H) = Σ_{|ϕT(κ)| > |ϕS(κ)|} |ϕT(κ)| − |ϕS(κ)|,
// the lower bound on |T^{E+}| (Section 4.5).
func (r *Result) TargetSurplus() int {
	sum := 0
	for _, b := range r.blocks {
		if d := len(b.Tgt) - len(b.Src); d > 0 {
			sum += d
		}
	}
	return sum
}

// SourceSurplus computes c_s(H), the lower bound on |S^{E−}|.
func (r *Result) SourceSurplus() int {
	sum := 0
	for _, b := range r.blocks {
		if d := len(b.Src) - len(b.Tgt); d > 0 {
			sum += d
		}
	}
	return sum
}

// Indeterminacy estimates how undetermined attribute attr still is: the
// maximum number of distinct source values of attr over all mixed blocks —
// an upper bound for the number of source values that must be considered as
// the origin of a target value (Section 4.3 "Extending Search States").
func (r *Result) Indeterminacy(attr int) int {
	max := 0
	distinct := make(map[string]struct{})
	for _, b := range r.blocks {
		if !b.Mixed() {
			continue
		}
		clear(distinct)
		for _, s := range b.Src {
			distinct[r.inst.Source.Value(int(s), attr)] = struct{}{}
		}
		if len(distinct) > max {
			max = len(distinct)
		}
	}
	return max
}
