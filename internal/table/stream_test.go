package table

import (
	"bytes"
	"testing"
)

func buildColumnar(t *testing.T, s *Schema, rows []Record, dicts []*Dict) *Table {
	t.Helper()
	b, err := NewBuilder(s, dicts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return b.Table()
}

var streamRows = []Record{
	{"a", "1", "x"},
	{"b", "2", "x"},
	{"a", "2", "y"},
	{"", "1", "x"},
}

// TestBuilderEquivalence: a columnar table must be observationally
// identical to the row-backed table built from the same records.
func TestBuilderEquivalence(t *testing.T) {
	s := MustSchema("k", "n", "c")
	row := MustFromRows(s, streamRows)
	col := buildColumnar(t, s, streamRows, nil)

	if col.Len() != row.Len() {
		t.Fatalf("Len = %d, want %d", col.Len(), row.Len())
	}
	for i := 0; i < row.Len(); i++ {
		if !col.Record(i).Equal(row.Record(i)) {
			t.Errorf("record %d = %v, want %v", i, col.Record(i), row.Record(i))
		}
		for a := 0; a < s.Len(); a++ {
			if col.Value(i, a) != row.Value(i, a) {
				t.Errorf("value %d,%d = %q, want %q", i, a, col.Value(i, a), row.Value(i, a))
			}
		}
	}
	for a := 0; a < s.Len(); a++ {
		cs, rs := col.Stats(a), row.Stats(a)
		if cs != rs {
			t.Errorf("stats %d = %+v, want %+v", a, cs, rs)
		}
	}
	var cb, rb bytes.Buffer
	if err := col.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := row.WriteCSV(&rb); err != nil {
		t.Fatal(err)
	}
	if cb.String() != rb.String() {
		t.Errorf("CSV differs:\n%s\nvs\n%s", cb.String(), rb.String())
	}
}

// TestBuilderSharedDicts: CodeColumn against the backing dictionary must
// return the stored codes without interning anything new.
func TestBuilderSharedDicts(t *testing.T) {
	s := MustSchema("k", "n", "c")
	dicts := []*Dict{NewDict(), NewDict(), NewDict()}
	col := buildColumnar(t, s, streamRows, dicts)
	for a := 0; a < s.Len(); a++ {
		before := dicts[a].Len()
		codes := col.CodeColumn(a, dicts[a])
		if dicts[a].Len() != before {
			t.Errorf("attr %d: CodeColumn grew the backing dict", a)
		}
		for i, c := range codes {
			if got := dicts[a].Value(c); got != streamRows[i][a] {
				t.Errorf("attr %d rec %d: decoded %q, want %q", a, i, got, streamRows[i][a])
			}
		}
	}
	// Against a foreign dict it must intern normally.
	foreign := NewDict()
	codes := col.CodeColumn(0, foreign)
	for i, c := range codes {
		if foreign.Value(c) != streamRows[i][0] {
			t.Errorf("foreign decode %d mismatch", i)
		}
	}
}

// TestColumnarMutators: Append/Clone/Select on columnar tables.
func TestColumnarMutators(t *testing.T) {
	s := MustSchema("k", "n", "c")
	col := buildColumnar(t, s, streamRows, nil)
	if err := col.Append(Record{"z", "9", "new"}); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 5 || col.Value(4, 2) != "new" {
		t.Fatalf("append failed: len=%d last=%v", col.Len(), col.Record(4))
	}
	clone := col.Clone()
	if err := clone.Append(Record{"w", "8", "more"}); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 5 {
		t.Error("clone append leaked into the original")
	}
	sel := col.Select([]int{2, 0})
	if sel.Len() != 2 || sel.Value(0, 0) != "a" || sel.Value(1, 1) != "1" {
		t.Errorf("select wrong: %v / %v", sel.Record(0), sel.Record(1))
	}
	if err := col.Append(Record{"short"}); err == nil {
		t.Error("width mismatch not rejected")
	}
}

// TestBuilderValidation: dictionary count and finished-builder misuse.
func TestBuilderValidation(t *testing.T) {
	s := MustSchema("a", "b")
	if _, err := NewBuilder(s, []*Dict{NewDict()}); err == nil {
		t.Error("dict count mismatch not rejected")
	}
	if _, err := NewBuilder(s, []*Dict{NewDict(), nil}); err == nil {
		t.Error("nil dict not rejected")
	}
	b, err := NewBuilder(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = b.Table()
	if err := b.Append(Record{"x", "y"}); err == nil {
		t.Error("append after Table() not rejected")
	}
}
