package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a table from CSV. The first row is the header and becomes
// the schema. Rows must be rectangular.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate ourselves for a better message
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("table: csv has no header row")
	}
	schema, err := NewSchema(rows[0]...)
	if err != nil {
		return nil, err
	}
	t := New(schema)
	for i, row := range rows[1:] {
		if len(row) != schema.Len() {
			return nil, fmt.Errorf("table: csv row %d has %d fields, header has %d", i+2, len(row), schema.Len())
		}
		t.records = append(t.records, Record(row).Clone())
	}
	return t, nil
}

// ReadCSVFile parses a table from the CSV file at path.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV renders the table as CSV, header first.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.attrs); err != nil {
		return err
	}
	for i, n := 0, t.Len(); i < n; i++ {
		if err := cw.Write(t.Record(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the CSV file at path.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
