package table

import (
	"fmt"
	"sync"
	"testing"

	"affidavit/internal/spill"
)

// buildPair builds the same synthetic snapshot twice: once plain columnar,
// once under a tiny budget that forces chunk spilling.
func buildSpillPair(t *testing.T, rows int) (plain, spilled *Table, st *spill.Stats) {
	t.Helper()
	s := MustSchema("id", "city", "qty")
	rec := func(i int) Record {
		return Record{fmt.Sprintf("%d", i), fmt.Sprintf("city-%d", i%37), fmt.Sprintf("%d", i%11)}
	}
	pb, err := NewBuilder(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := spill.NewManager(1<<12, t.TempDir()) // 4 KiB: one chunk busts the share
	st = &spill.Stats{}
	sb, err := NewBuilder(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb = sb.WithSpill(m, st)
	for i := 0; i < rows; i++ {
		if err := pb.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
		if err := sb.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	return pb.Table(), sb.Table(), st
}

// TestSpilledTableMatchesPlain drives every accessor of a spilled table
// against its in-memory twin.
func TestSpilledTableMatchesPlain(t *testing.T) {
	const rows = 5000 // several chunks per column
	plain, spilled, st := buildSpillPair(t, rows)
	if !spilled.Spilled() || plain.Spilled() {
		t.Fatalf("Spilled() = %v/%v, want true/false", spilled.Spilled(), plain.Spilled())
	}
	if st.Bytes() == 0 {
		t.Fatal("tiny budget spilled nothing")
	}
	if spilled.Len() != rows {
		t.Fatalf("Len = %d", spilled.Len())
	}
	for i := 0; i < rows; i += 97 {
		if !plain.Record(i).Equal(spilled.Record(i)) {
			t.Fatalf("record %d: %v vs %v", i, plain.Record(i), spilled.Record(i))
		}
	}
	for a := 0; a < 3; a++ {
		d := NewDict()
		pc := plain.CodeColumn(a, d)
		sc := spilled.CodeColumn(a, spilled.dicts[a])
		// Different dictionaries, so compare decoded values.
		for i := 0; i < rows; i += 211 {
			pv := d.Value(pc[i])
			sv := spilled.dicts[a].Value(sc[i])
			if pv != sv {
				t.Fatalf("attr %d record %d: %q vs %q", a, i, pv, sv)
			}
		}
		ps, ss := plain.Stats(a), spilled.Stats(a)
		if ps != ss {
			t.Fatalf("stats attr %d: %+v vs %+v", a, ps, ss)
		}
	}
	// Clone materialises; Select projects.
	cl := spilled.Clone()
	if cl.Spilled() {
		t.Fatal("clone of a spilled table should be in-memory")
	}
	idx := []int{0, 4999, 17, 1024, 1023}
	psel, ssel := plain.Select(idx), spilled.Select(idx)
	for i := range idx {
		if !psel.Record(i).Equal(ssel.Record(i)) {
			t.Fatalf("select %d: %v vs %v", i, psel.Record(i), ssel.Record(i))
		}
		if !cl.Record(idx[i]).Equal(plain.Record(idx[i])) {
			t.Fatalf("clone %d differs", idx[i])
		}
	}
	// DropAttrs shares columns and freezes them.
	dp := spilled.DropAttrs(map[int]bool{1: true})
	if dp.Schema().Len() != 2 || dp.Len() != rows {
		t.Fatalf("DropAttrs shape: %d attrs, %d rows", dp.Schema().Len(), dp.Len())
	}
	if got, want := dp.Value(2500, 1), plain.Value(2500, 2); got != want {
		t.Fatalf("DropAttrs value: %q vs %q", got, want)
	}
}

// TestSpilledTableConcurrentReads exercises the paging path under -race.
func TestSpilledTableConcurrentReads(t *testing.T) {
	_, spilled, _ := buildSpillPair(t, 4096)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < 4096; i += 4 {
				want := fmt.Sprintf("%d", i)
				if v := spilled.Value(i, 0); v != want {
					t.Errorf("Value(%d, 0) = %q, want %q", i, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
