// Package table provides the relational substrate: schemas, records, table
// snapshots, column statistics and CSV import/export. Every record is a
// tuple of string values under a shared schema, matching the paper's
// Definition 3.1 where source and target snapshots are sets of value tuples
// under the same attribute tuple A.
package table

import (
	"fmt"
	"strings"

	"affidavit/internal/spill"
	"affidavit/internal/value"
)

// Schema is an ordered tuple of attribute names.
type Schema struct {
	attrs []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Names must be unique and
// non-empty.
func NewSchema(attrs ...string) (*Schema, error) {
	s := &Schema{
		attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("table: attribute %d has empty name", i)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("table: duplicate attribute name %q", a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for fixtures and tests.
func MustSchema(attrs ...string) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes d = |A|.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the name of attribute i.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Attrs returns a copy of the attribute name tuple.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Equal reports whether two schemas have identical attribute tuples.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// WithAttr returns a new schema with one attribute appended.
func (s *Schema) WithAttr(name string) (*Schema, error) {
	return NewSchema(append(s.Attrs(), name)...)
}

// WithoutAttrs returns a new schema omitting the attributes at the given
// positions, together with the mapping from new positions to old ones.
func (s *Schema) WithoutAttrs(drop map[int]bool) (*Schema, []int) {
	var kept []string
	var old []int
	for i, a := range s.attrs {
		if !drop[i] {
			kept = append(kept, a)
			old = append(old, i)
		}
	}
	ns, err := NewSchema(kept...)
	if err != nil {
		// Dropping attributes cannot introduce duplicates or empties.
		panic(err)
	}
	return ns, old
}

// Record is one value tuple. Records are value types; helpers copy rather
// than alias unless documented otherwise.
type Record []string

// Clone returns a deep copy of the record.
func (r Record) Clone() Record { return append(Record(nil), r...) }

// Equal reports field-wise equality.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the full tuple, suitable for
// multiset grouping. Values are length-prefixed so no separator collision
// can merge distinct tuples.
func (r Record) Key() string {
	var sb strings.Builder
	for _, v := range r {
		fmt.Fprintf(&sb, "%d:", len(v))
		sb.WriteString(v)
	}
	return sb.String()
}

// Project returns the sub-tuple at the given attribute positions.
func (r Record) Project(cols []int) Record {
	p := make(Record, len(cols))
	for i, c := range cols {
		p[i] = r[c]
	}
	return p
}

// Table is a snapshot: a schema plus a multiset of records. Tables have two
// interchangeable backings:
//
//   - Row backing: records are stored as string tuples (FromRows, ReadCSV).
//   - Columnar backing: every value is interned into a per-attribute Dict the
//     moment it is appended, and records are stored as dense int32 code
//     columns (NewBuilder). A snapshot streamed in chunk-by-chunk therefore
//     never exists as a [][]string — memory is bounded by the number of
//     *distinct* values plus 4 bytes per cell.
//
// Both backings serve the same accessors and produce identical explanations;
// only the memory layout and the interning work differ.
//
// A columnar table built under a memory budget (Builder.WithSpill) stores
// its code columns as spillable chunked columns instead of plain slices:
// cold chunks page out to the budget manager's temp file and back on
// demand, so a snapshot's resident cost drops to the dictionary plus the
// budget's table share. Accessors and explanations are unchanged.
type Table struct {
	schema  *Schema
	records []Record // row backing; nil when columnar

	// Columnar backing. cols[a][i] is the code of record i's value of
	// attribute a in dicts[a]; views[a] is a lock-free snapshot of dicts[a]'s
	// value table covering every code stored in cols[a]; clen is the record
	// count (kept separately so zero-attribute tables still know their size).
	// Under a memory budget scols[a] replaces cols[a].
	cols  [][]int32
	scols []*spill.Ints
	dicts []*Dict
	views [][]string
	clen  int
}

// columnar reports whether the table uses the interned columnar backing.
func (t *Table) columnar() bool { return t.dicts != nil }

// spilled reports whether the columnar backing is spillable.
func (t *Table) spilled() bool { return t.scols != nil }

// Spilled reports whether the table's code columns live behind a spillable
// chunked store (Builder.WithSpill) rather than plain in-memory slices.
func (t *Table) Spilled() bool { return t.spilled() }

// code returns the stored code of record i, attribute a (columnar only).
func (t *Table) code(i, a int) int32 {
	if t.spilled() {
		return t.scols[a].At(i)
	}
	return t.cols[a][i]
}

// New creates an empty table under the given schema.
func New(s *Schema) *Table {
	return &Table{schema: s}
}

// FromRows builds a table from a schema and rows, validating widths.
func FromRows(s *Schema, rows []Record) (*Table, error) {
	t := New(s)
	for i, r := range rows {
		if len(r) != s.Len() {
			return nil, fmt.Errorf("table: row %d has %d values, schema has %d attributes", i, len(r), s.Len())
		}
		t.records = append(t.records, r.Clone())
	}
	return t, nil
}

// MustFromRows is FromRows that panics on error, for fixtures and tests.
func MustFromRows(s *Schema, rows []Record) *Table {
	t, err := FromRows(s, rows)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of records.
func (t *Table) Len() int {
	if t.columnar() {
		return t.clen
	}
	return len(t.records)
}

// Record returns record i. For row-backed tables it aliases the stored
// tuple and callers must not mutate it; for columnar tables it decodes a
// fresh tuple per call (same values, safe to hold).
func (t *Table) Record(i int) Record {
	if t.columnar() {
		r := make(Record, len(t.views))
		for a := range t.views {
			r[a] = t.views[a][t.code(i, a)]
		}
		return r
	}
	return t.records[i]
}

// Value returns the value of attribute a in record i.
func (t *Table) Value(i, a int) string {
	if t.columnar() {
		return t.views[a][t.code(i, a)]
	}
	return t.records[i][a]
}

// Append adds a record (validated against the schema). On a columnar table
// the values are interned immediately.
func (t *Table) Append(r Record) error {
	if len(r) != t.schema.Len() {
		return fmt.Errorf("table: record has %d values, schema has %d attributes", len(r), t.schema.Len())
	}
	if t.columnar() {
		t.appendCoded(r)
		return nil
	}
	t.records = append(t.records, r.Clone())
	return nil
}

// appendCoded interns one record into the columnar backing.
func (t *Table) appendCoded(r Record) {
	for a, v := range r {
		c := t.dicts[a].Code(v)
		if int(c) >= len(t.views[a]) {
			t.views[a] = t.dicts[a].Snapshot()
		}
		if t.spilled() {
			t.scols[a].Append(c)
		} else {
			t.cols[a] = append(t.cols[a], c)
		}
	}
	t.clen++
}

// Clone returns a deep copy of the table. Columnar clones copy the code
// columns and share the (append-only) dictionaries; a spilled table's
// clone materialises the columns in memory — cloning is a small-table
// operation, spilling an ingest-time one.
func (t *Table) Clone() *Table {
	if t.columnar() {
		c := New(t.schema)
		c.cols = make([][]int32, t.schema.Len())
		for a := range c.cols {
			if t.spilled() {
				c.cols[a] = t.scols[a].AppendTo(make([]int32, 0, t.clen))
			} else {
				c.cols[a] = append([]int32(nil), t.cols[a]...)
			}
		}
		c.dicts = append([]*Dict(nil), t.dicts...)
		c.views = append([][]string(nil), t.views...)
		c.clen = t.clen
		return c
	}
	c := New(t.schema)
	c.records = make([]Record, len(t.records))
	for i, r := range t.records {
		c.records[i] = r.Clone()
	}
	return c
}

// Select returns a new table containing the records at the given indices
// (records are copied; columnar tables stay columnar).
func (t *Table) Select(idx []int) *Table {
	if t.columnar() {
		c := New(t.schema)
		c.cols = make([][]int32, t.schema.Len())
		for a := range c.cols {
			sel := make([]int32, len(idx))
			for i, j := range idx {
				sel[i] = t.code(j, a)
			}
			c.cols[a] = sel
		}
		c.dicts = append([]*Dict(nil), t.dicts...)
		c.views = append([][]string(nil), t.views...)
		c.clen = len(idx)
		return c
	}
	c := New(t.schema)
	c.records = make([]Record, len(idx))
	for i, j := range idx {
		c.records[i] = t.records[j].Clone()
	}
	return c
}

// Column returns a copy of attribute a's values in record order.
func (t *Table) Column(a int) []string {
	n := t.Len()
	col := make([]string, n)
	for i := 0; i < n; i++ {
		col[i] = t.Value(i, a)
	}
	return col
}

// DropAttrs returns a new table without the attributes at the given
// positions. A columnar table stays columnar: the surviving code columns
// are shared read-only views (capacity-clamped, so appending to the
// projection can never write into the original), which keeps the
// projection O(d) instead of re-materialising every record — the
// difference between a cheap filter and hundreds of megabytes on the
// Figure 5 input. Spilled columns are shared too and frozen against
// further appends.
func (t *Table) DropAttrs(drop map[int]bool) *Table {
	ns, old := t.schema.WithoutAttrs(drop)
	c := New(ns)
	if t.columnar() {
		c.dicts = make([]*Dict, len(old))
		c.views = make([][]string, len(old))
		c.clen = t.clen
		if t.spilled() {
			c.scols = make([]*spill.Ints, len(old))
		} else {
			c.cols = make([][]int32, len(old))
		}
		for i, a := range old {
			c.dicts[i] = t.dicts[a]
			c.views[i] = t.views[a]
			if t.spilled() {
				t.scols[a].Freeze()
				c.scols[i] = t.scols[a]
			} else {
				col := t.cols[a]
				c.cols[i] = col[:len(col):len(col)]
			}
		}
		return c
	}
	n := t.Len()
	c.records = make([]Record, n)
	for i := 0; i < n; i++ {
		c.records[i] = t.Record(i).Project(old)
	}
	return c
}

// WithColumn returns a new table with one attribute appended whose value in
// record i is col[i]. len(col) must equal t.Len().
func (t *Table) WithColumn(name string, col []string) (*Table, error) {
	if len(col) != t.Len() {
		return nil, fmt.Errorf("table: column has %d values, table has %d records", len(col), t.Len())
	}
	ns, err := t.schema.WithAttr(name)
	if err != nil {
		return nil, err
	}
	c := New(ns)
	c.records = make([]Record, t.Len())
	for i := range c.records {
		c.records[i] = append(t.Record(i).Clone(), col[i])
	}
	return c, nil
}

// ColumnStats summarises one attribute, driving both the generator's domain
// detection and the >0.7-distinct-ratio filter from Section 5.1.
type ColumnStats struct {
	Attr          string
	Distinct      int
	NonEmpty      int
	NumericAll    bool // every non-empty value parses as a decimal
	CanonicalAll  bool // every non-empty value is in canonical numeric form
	DistinctRatio float64
}

// Stats computes ColumnStats for attribute a.
func (t *Table) Stats(a int) ColumnStats {
	st := ColumnStats{Attr: t.schema.Attr(a), NumericAll: true, CanonicalAll: true}
	seen := make(map[string]bool)
	for i, n := 0, t.Len(); i < n; i++ {
		v := t.Value(i, a)
		if !seen[v] {
			seen[v] = true
		}
		if v == "" {
			continue
		}
		st.NonEmpty++
		if !value.IsNumeric(v) {
			st.NumericAll = false
			st.CanonicalAll = false
		} else if !value.IsCanonical(v) {
			st.CanonicalAll = false
		}
	}
	st.Distinct = len(seen)
	if t.Len() > 0 {
		st.DistinctRatio = float64(st.Distinct) / float64(t.Len())
	}
	if st.NonEmpty == 0 {
		st.NumericAll = false
		st.CanonicalAll = false
	}
	return st
}

// AllStats computes stats for every attribute.
func (t *Table) AllStats() []ColumnStats {
	out := make([]ColumnStats, t.schema.Len())
	for a := range out {
		out[a] = t.Stats(a)
	}
	return out
}

// String renders a compact preview (schema plus up to 8 rows) for debugging.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.schema.attrs, " | "))
	sb.WriteByte('\n')
	n := t.Len()
	shown := n
	if shown > 8 {
		shown = 8
	}
	for i := 0; i < shown; i++ {
		sb.WriteString(strings.Join(t.Record(i), " | "))
		sb.WriteByte('\n')
	}
	if shown < n {
		fmt.Fprintf(&sb, "… (%d more rows)\n", n-shown)
	}
	return sb.String()
}
