package table_test

import (
	"fmt"
	"sync"
	"testing"

	"affidavit/internal/table"
)

func TestDictRoundTrip(t *testing.T) {
	d := table.NewDict()
	values := []string{"a", "", "a", "b", "k $", "a|b", "b"}
	codes := make([]int32, len(values))
	for i, v := range values {
		codes[i] = d.Code(v)
	}
	if d.Len() != 5 {
		t.Errorf("Len = %d, want 5 distinct values", d.Len())
	}
	for i, v := range values {
		if got := d.Value(codes[i]); got != v {
			t.Errorf("Value(Code(%q)) = %q", v, got)
		}
	}
	// Equal strings share codes; distinct strings never do.
	if codes[0] != codes[2] || codes[3] != codes[6] {
		t.Error("equal values got distinct codes")
	}
	if codes[0] == codes[3] || codes[1] == codes[4] {
		t.Error("distinct values share a code")
	}
	if c, ok := d.Lookup("a"); !ok || c != codes[0] {
		t.Error("Lookup disagrees with Code")
	}
	if _, ok := d.Lookup("never interned"); ok {
		t.Error("Lookup invented a code")
	}
	if d.Len() != 5 {
		t.Error("Lookup must not intern")
	}
}

func TestDictConcurrentInterning(t *testing.T) {
	d := table.NewDict()
	const goroutines, values = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < values; i++ {
				v := fmt.Sprintf("v%03d", (i+g)%values)
				c := d.Code(v)
				if got := d.Value(c); got != v {
					t.Errorf("Value(Code(%q)) = %q", v, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != values {
		t.Errorf("Len = %d, want %d", d.Len(), values)
	}
}

func TestCodeColumnSharedCodeSpace(t *testing.T) {
	s := table.MustSchema("x", "y")
	src := table.MustFromRows(s, []table.Record{{"a", "1"}, {"b", "2"}, {"a", "3"}})
	tgt := table.MustFromRows(s, []table.Record{{"b", "2"}, {"c", "1"}})
	d := table.NewDict()
	sc := src.CodeColumn(0, d)
	tc := tgt.CodeColumn(0, d)
	if len(sc) != 3 || len(tc) != 2 {
		t.Fatalf("column lengths %d/%d", len(sc), len(tc))
	}
	if sc[0] != sc[2] {
		t.Error("repeated source value got two codes")
	}
	if sc[1] != tc[0] {
		t.Error("cross-snapshot equality must be code equality")
	}
	if tc[1] == sc[0] || tc[1] == sc[1] {
		t.Error("fresh target value collided with a source code")
	}
	// A second attribute interned into its own dict is an independent code
	// space.
	d2 := table.NewDict()
	yc := src.CodeColumn(1, d2)
	if d2.Value(yc[0]) != "1" {
		t.Error("per-attribute dict round trip failed")
	}
}

func TestDictPoolSharing(t *testing.T) {
	pool := table.NewDictPool()
	s1 := table.MustSchema("a", "b")
	s2 := table.MustSchema("b", "c")
	d1 := pool.DictsFor(s1)
	d2 := pool.DictsFor(s2)
	if d1[1] != d2[0] {
		t.Error("attribute \"b\" should share one dictionary across schemas")
	}
	if d1[0] == d2[1] {
		t.Error("attributes \"a\" and \"c\" should not share a dictionary")
	}
	if pool.Attrs() != 3 {
		t.Errorf("pool has %d attribute dicts, want 3", pool.Attrs())
	}
	c := d1[1].Code("x")
	if got := pool.Dict("b").Code("x"); got != c {
		t.Errorf("re-interning through the pool gave code %d, want %d", got, c)
	}
	if pool.Values() != 1 {
		t.Errorf("pool holds %d values, want 1", pool.Values())
	}
}

func TestDictPoolConcurrent(t *testing.T) {
	pool := table.NewDictPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pool.Dict("attr").Code(fmt.Sprintf("v%d", i%50))
			}
		}(g)
	}
	wg.Wait()
	if got := pool.Dict("attr").Len(); got != 50 {
		t.Errorf("dict has %d values, want 50", got)
	}
}
