package table

import "sync"

// Dict is an append-only dictionary mapping distinct string values to dense
// int32 codes. It is the value-interning backbone of the columnar backend:
// equal strings get equal codes, so the blocking and search hot paths can
// compare, group and hash attribute values as machine integers instead of
// strings.
//
// Dicts are safe for concurrent use. Codes are assigned in interning order
// and never change; numeric code order is therefore NOT a deterministic
// property across runs (concurrent interners may race for the next code) and
// must never be used for tie-breaking — compare the underlying strings via
// Value instead.
type Dict struct {
	mu    sync.RWMutex
	codes map[string]int32
	vals  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int32)}
}

// Len returns the number of distinct interned values.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.vals)
	d.mu.RUnlock()
	return n
}

// Code interns v and returns its code, assigning the next dense code if v is
// new.
func (d *Dict) Code(v string) int32 {
	d.mu.RLock()
	c, ok := d.codes[v]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	c, ok = d.codes[v]
	if !ok {
		c = int32(len(d.vals))
		d.codes[v] = c
		d.vals = append(d.vals, v)
	}
	d.mu.Unlock()
	return c
}

// Lookup returns v's code without interning; ok is false when v was never
// interned.
func (d *Dict) Lookup(v string) (int32, bool) {
	d.mu.RLock()
	c, ok := d.codes[v]
	d.mu.RUnlock()
	return c, ok
}

// Value returns the string behind code c.
func (d *Dict) Value(c int32) string {
	d.mu.RLock()
	v := d.vals[c]
	d.mu.RUnlock()
	return v
}

// Snapshot returns the current value table as a read-only slice: index c
// holds the string behind code c for every code assigned so far. Because
// dictionaries are append-only, the snapshot stays valid (for its codes)
// even as the dictionary keeps growing — callers get lock-free decoding.
func (d *Dict) Snapshot() []string {
	d.mu.RLock()
	v := d.vals[:len(d.vals):len(d.vals)]
	d.mu.RUnlock()
	return v
}

// CodeColumn interns attribute a's values into d and returns them as a code
// column in record order. Passing the same Dict for the corresponding
// attribute of two snapshots puts both columns in one shared code space, so
// cross-snapshot equality is code equality. A columnar table whose backing
// dictionary for a IS d short-circuits: its stored codes are already the
// answer, so streamed-in snapshots are never re-interned.
func (t *Table) CodeColumn(a int, d *Dict) []int32 {
	if t.columnar() && t.dicts[a] == d {
		if t.spilled() {
			return t.scols[a].AppendTo(make([]int32, 0, t.clen))
		}
		return append([]int32(nil), t.cols[a]...)
	}
	n := t.Len()
	col := make([]int32, n)
	for i := 0; i < n; i++ {
		col[i] = d.Code(t.Value(i, a))
	}
	return col
}

// DictPool is a long-lived set of dictionaries keyed by attribute name, the
// value-interning substrate of snapshot-chain sessions: when successive
// snapshots (or many tables from the same domain) are interned against one
// pool, every value already seen by an earlier run keeps its code and is
// never re-interned — only genuinely novel values pay the interning cost.
//
// Pools are safe for concurrent use; the dictionaries they hand out are
// append-only and shared, so results derived from pooled codes must not
// depend on numeric code order (see Dict).
type DictPool struct {
	mu    sync.Mutex
	dicts map[string]*Dict
}

// NewDictPool returns an empty pool.
func NewDictPool() *DictPool {
	return &DictPool{dicts: make(map[string]*Dict)}
}

// Dict returns the pool's dictionary for the named attribute, creating it
// on first use.
func (p *DictPool) Dict(attr string) *Dict {
	p.mu.Lock()
	d, ok := p.dicts[attr]
	if !ok {
		d = NewDict()
		p.dicts[attr] = d
	}
	p.mu.Unlock()
	return d
}

// DictsFor returns the pool's dictionaries for every attribute of s, in
// schema order, creating missing ones. Two schemas sharing attribute names
// receive the same dictionaries for those attributes.
func (p *DictPool) DictsFor(s *Schema) []*Dict {
	out := make([]*Dict, s.Len())
	for a := range out {
		out[a] = p.Dict(s.Attr(a))
	}
	return out
}

// Attrs returns the number of attribute dictionaries in the pool.
func (p *DictPool) Attrs() int {
	p.mu.Lock()
	n := len(p.dicts)
	p.mu.Unlock()
	return n
}

// Values returns the total number of interned values across the pool, a
// measure of how much interning work chain reuse has amortised.
func (p *DictPool) Values() int {
	p.mu.Lock()
	sum := 0
	//affidavit:ordered commutative sum of per-dict lengths; Len is a pure accessor
	for _, d := range p.dicts {
		sum += d.Len()
	}
	p.mu.Unlock()
	return sum
}
