package table

import "sync"

// Dict is an append-only dictionary mapping distinct string values to dense
// int32 codes. It is the value-interning backbone of the columnar backend:
// equal strings get equal codes, so the blocking and search hot paths can
// compare, group and hash attribute values as machine integers instead of
// strings.
//
// Dicts are safe for concurrent use. Codes are assigned in interning order
// and never change; numeric code order is therefore NOT a deterministic
// property across runs (concurrent interners may race for the next code) and
// must never be used for tie-breaking — compare the underlying strings via
// Value instead.
type Dict struct {
	mu    sync.RWMutex
	codes map[string]int32
	vals  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int32)}
}

// Len returns the number of distinct interned values.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.vals)
	d.mu.RUnlock()
	return n
}

// Code interns v and returns its code, assigning the next dense code if v is
// new.
func (d *Dict) Code(v string) int32 {
	d.mu.RLock()
	c, ok := d.codes[v]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	c, ok = d.codes[v]
	if !ok {
		c = int32(len(d.vals))
		d.codes[v] = c
		d.vals = append(d.vals, v)
	}
	d.mu.Unlock()
	return c
}

// Lookup returns v's code without interning; ok is false when v was never
// interned.
func (d *Dict) Lookup(v string) (int32, bool) {
	d.mu.RLock()
	c, ok := d.codes[v]
	d.mu.RUnlock()
	return c, ok
}

// Value returns the string behind code c.
func (d *Dict) Value(c int32) string {
	d.mu.RLock()
	v := d.vals[c]
	d.mu.RUnlock()
	return v
}

// CodeColumn interns attribute a's values into d and returns them as a code
// column in record order. Passing the same Dict for the corresponding
// attribute of two snapshots puts both columns in one shared code space, so
// cross-snapshot equality is code equality.
func (t *Table) CodeColumn(a int, d *Dict) []int32 {
	col := make([]int32, len(t.records))
	for i, r := range t.records {
		col[i] = d.Code(r[a])
	}
	return col
}
