package table

import (
	"fmt"

	"affidavit/internal/spill"
)

// Builder assembles a columnar table incrementally: every appended record
// is interned into the per-attribute dictionaries the moment it arrives and
// stored as int32 codes, so a snapshot streamed in from a reader never
// exists as a [][]string. This is the ingest side of the interned columnar
// backend — feeding source and target through builders sharing one
// dictionary set puts both snapshots in a common code space before the
// search even starts.
type Builder struct {
	t    *Table
	done bool
}

// NewBuilder returns a builder for the given schema. dicts, when non-nil,
// must hold one dictionary per attribute (typically a shared set covering a
// snapshot pair, or a DictPool's DictsFor); nil creates fresh dictionaries.
func NewBuilder(s *Schema, dicts []*Dict) (*Builder, error) {
	if dicts == nil {
		dicts = make([]*Dict, s.Len())
		for a := range dicts {
			dicts[a] = NewDict()
		}
	}
	if len(dicts) != s.Len() {
		return nil, fmt.Errorf("table: got %d dictionaries, schema has %d attributes", len(dicts), s.Len())
	}
	for a, d := range dicts {
		if d == nil {
			return nil, fmt.Errorf("table: dictionary for attribute %d is nil", a)
		}
	}
	t := New(s)
	t.cols = make([][]int32, s.Len())
	t.dicts = dicts
	t.views = make([][]string, s.Len())
	for a, d := range dicts {
		t.views[a] = d.Snapshot()
	}
	return &Builder{t: t}, nil
}

// WithSpill rebacks the builder's code columns with spillable chunked
// columns governed by m: once the manager's table share is full, completed
// chunks page out to its temp file and back on demand, bounding the
// resident cost of arbitrarily long snapshots. st (which may be nil)
// accumulates the spilled volume. Must be called before the first Append;
// an inactive manager leaves the builder unchanged.
func (b *Builder) WithSpill(m *spill.Manager, st *spill.Stats) *Builder {
	if !m.Active() {
		return b
	}
	if b.done || b.t.Len() > 0 {
		panic("table: WithSpill after Append")
	}
	b.t.cols = nil
	b.t.scols = make([]*spill.Ints, b.t.schema.Len())
	for a := range b.t.scols {
		b.t.scols[a] = m.NewInts(st)
	}
	return b
}

// Append interns one record. The record is consumed by value — the builder
// keeps no reference to it.
func (b *Builder) Append(r Record) error {
	if b.done {
		return fmt.Errorf("table: builder already finished")
	}
	return b.t.Append(r)
}

// Len returns the number of records appended so far.
func (b *Builder) Len() int { return b.t.Len() }

// Table finishes the build and returns the columnar table. The builder
// must not be appended to afterwards.
func (b *Builder) Table() *Table {
	b.done = true
	return b.t
}
