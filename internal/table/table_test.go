package table

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Attr(1) != "b" {
		t.Errorf("Attr(1) = %q, want b", s.Attr(1))
	}
	if s.Index("c") != 2 || s.Index("zzz") != -1 {
		t.Error("Index lookup wrong")
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema("a", "a"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty attribute accepted")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema("x", "y")
	b := MustSchema("x", "y")
	c := MustSchema("y", "x")
	d := MustSchema("x")
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("schema equality wrong")
	}
}

func TestSchemaWithWithout(t *testing.T) {
	s := MustSchema("a", "b", "c")
	s2, err := s.WithAttr("d")
	if err != nil || s2.Len() != 4 || s2.Attr(3) != "d" {
		t.Fatalf("WithAttr failed: %v %v", s2, err)
	}
	s3, old := s.WithoutAttrs(map[int]bool{1: true})
	if s3.Len() != 2 || s3.Attr(0) != "a" || s3.Attr(1) != "c" {
		t.Fatalf("WithoutAttrs wrong schema: %v", s3.Attrs())
	}
	if len(old) != 2 || old[0] != 0 || old[1] != 2 {
		t.Fatalf("WithoutAttrs wrong mapping: %v", old)
	}
}

func TestRecordKeyCollisionFree(t *testing.T) {
	// Without length prefixes these two would collide under naive joins.
	a := Record{"ab", "c"}
	b := Record{"a", "bc"}
	if a.Key() == b.Key() {
		t.Error("record keys collide")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
}

func TestTableBasics(t *testing.T) {
	s := MustSchema("id", "v")
	tab, err := FromRows(s, []Record{{"1", "x"}, {"2", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 || tab.Value(1, 1) != "y" {
		t.Error("FromRows content wrong")
	}
	if err := tab.Append(Record{"3", "z"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(Record{"too", "many", "fields"}); err == nil {
		t.Error("Append accepted wrong width")
	}
	if _, err := FromRows(s, []Record{{"only-one"}}); err == nil {
		t.Error("FromRows accepted wrong width")
	}
	col := tab.Column(0)
	if len(col) != 3 || col[2] != "3" {
		t.Errorf("Column = %v", col)
	}
	sel := tab.Select([]int{2, 0})
	if sel.Len() != 2 || sel.Value(0, 0) != "3" || sel.Value(1, 0) != "1" {
		t.Error("Select wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := MustSchema("a")
	tab := MustFromRows(s, []Record{{"orig"}})
	c := tab.Clone()
	c.records[0][0] = "mutated"
	if tab.Value(0, 0) != "orig" {
		t.Error("Clone aliases records")
	}
}

func TestDropAttrsAndWithColumn(t *testing.T) {
	s := MustSchema("a", "b", "c")
	tab := MustFromRows(s, []Record{{"1", "2", "3"}, {"4", "5", "6"}})
	d := tab.DropAttrs(map[int]bool{0: true, 2: true})
	if d.Schema().Len() != 1 || d.Value(1, 0) != "5" {
		t.Error("DropAttrs wrong")
	}
	w, err := tab.WithColumn("d", []string{"x", "y"})
	if err != nil || w.Value(0, 3) != "x" || w.Schema().Attr(3) != "d" {
		t.Errorf("WithColumn wrong: %v %v", w, err)
	}
	if _, err := tab.WithColumn("e", []string{"short"}); err == nil {
		t.Error("WithColumn accepted wrong length")
	}
	// Original untouched.
	if tab.Schema().Len() != 3 {
		t.Error("WithColumn mutated original")
	}
}

func TestStats(t *testing.T) {
	s := MustSchema("num", "canon", "cat", "empty")
	tab := MustFromRows(s, []Record{
		{"007", "1.5", "x", ""},
		{"12", "2", "y", ""},
		{"12", "3.25", "x", ""},
	})
	num := tab.Stats(0)
	if !num.NumericAll || num.CanonicalAll {
		t.Errorf("num stats wrong: %+v", num)
	}
	canon := tab.Stats(1)
	if !canon.NumericAll || !canon.CanonicalAll {
		t.Errorf("canon stats wrong: %+v", canon)
	}
	cat := tab.Stats(2)
	if cat.NumericAll || cat.Distinct != 2 {
		t.Errorf("cat stats wrong: %+v", cat)
	}
	empty := tab.Stats(3)
	if empty.NonEmpty != 0 || empty.NumericAll {
		t.Errorf("empty stats wrong: %+v", empty)
	}
	if got := tab.Stats(0).DistinctRatio; got < 0.66 || got > 0.67 {
		t.Errorf("DistinctRatio = %v, want 2/3", got)
	}
	if all := tab.AllStats(); len(all) != 4 || all[2].Attr != "cat" {
		t.Error("AllStats wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustSchema("a", "b")
	tab := MustFromRows(s, []Record{
		{"1", "hello, world"},
		{"2", `with "quotes"`},
		{"3", "line\nbreak"},
		{"4", ""},
	})
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Equal(tab.Schema()) || got.Len() != tab.Len() {
		t.Fatal("round trip changed shape")
	}
	for i := 0; i < tab.Len(); i++ {
		if !got.Record(i).Equal(tab.Record(i)) {
			t.Errorf("row %d: got %v want %v", i, got.Record(i), tab.Record(i))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Error("duplicate header accepted")
	}
	if _, err := ReadCSVFile("/nonexistent/path.csv"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestStringPreview(t *testing.T) {
	s := MustSchema("a")
	var rows []Record
	for i := 0; i < 12; i++ {
		rows = append(rows, Record{"v"})
	}
	tab := MustFromRows(s, rows)
	out := tab.String()
	if !strings.Contains(out, "more rows") {
		t.Errorf("preview should elide rows: %q", out)
	}
}

// Property: Record.Key is injective on the records we generate.
func TestQuickRecordKeyInjective(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		ra := Record{a1, a2}
		rb := Record{b1, b2}
		if ra.Equal(rb) {
			return ra.Key() == rb.Key()
		}
		return ra.Key() != rb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CSV round trip preserves arbitrary cell content.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(v1, v2 string) bool {
		// csv cannot represent bare \r reliably across round trips; the
		// package normalises \r\n. Restrict to values without \r.
		if strings.ContainsRune(v1, '\r') || strings.ContainsRune(v2, '\r') {
			return true
		}
		s := MustSchema("x", "y")
		tab := MustFromRows(s, []Record{{v1, v2}})
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return got.Len() == 1 && got.Record(0).Equal(tab.Record(0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
