// Package satreduce implements the polynomial-time reduction from 3-SAT to
// Explain-Table-Delta used in the paper's NP-hardness proof (Theorem 3.12,
// Figure 2), plus an exact solver for the reduced instances so the
// construction can be exercised end to end: a formula is satisfiable iff
// the optimal explanation of its reduced instance deletes no source record,
// and a model can be read off the optimal attribute functions.
package satreduce

import (
	"fmt"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

// Literal is one literal: variable index Var (1-based) with optional
// negation.
type Literal struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a conjunction of clauses over NumVars variables.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// Example returns the Figure 2 instance: c = (v1∨v2∨v3) ∧ (¬v1∨v4) ∧ ¬v3,
// which reduces to 3 source and 7+3+1 = 11 target records.
func Example() CNF {
	return CNF{
		NumVars: 4,
		Clauses: []Clause{
			{{Var: 1}, {Var: 2}, {Var: 3}},
			{{Var: 1, Neg: true}, {Var: 4}},
			{{Var: 3, Neg: true}},
		},
	}
}

// Validate checks variable indices and clause sizes.
func (c CNF) Validate() error {
	if c.NumVars < 1 {
		return fmt.Errorf("satreduce: need at least one variable")
	}
	for i, cl := range c.Clauses {
		if len(cl) == 0 {
			return fmt.Errorf("satreduce: clause %d is empty", i+1)
		}
		if len(cl) > 3 {
			return fmt.Errorf("satreduce: clause %d has %d literals; 3-SAT allows ≤ 3", i+1, len(cl))
		}
		seen := map[int]bool{}
		for _, l := range cl {
			if l.Var < 1 || l.Var > c.NumVars {
				return fmt.Errorf("satreduce: clause %d references v%d outside 1..%d", i+1, l.Var, c.NumVars)
			}
			if seen[l.Var] {
				return fmt.Errorf("satreduce: clause %d repeats v%d", i+1, l.Var)
			}
			seen[l.Var] = true
		}
	}
	return nil
}

// Reduce builds the Explain-Table-Delta instance of Figure 2. The schema is
// (#, v1, …, vd). The source holds one record per clause with '1' for
// positive literals, '0' for negative ones and '-' for absent variables.
// The target holds, per clause with k literals, the 2^k − 1 satisfying
// assignments of the clause, encoded so that applying id (variable true) or
// negation (variable false) per column to the clause's source record yields
// exactly the record of the corresponding model.
func Reduce(c CNF) (*delta.Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	attrs := make([]string, 0, c.NumVars+1)
	attrs = append(attrs, "#")
	for v := 1; v <= c.NumVars; v++ {
		attrs = append(attrs, fmt.Sprintf("v%d", v))
	}
	schema, err := table.NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	src := table.New(schema)
	tgt := table.New(schema)
	for i, cl := range c.Clauses {
		rec := make(table.Record, c.NumVars+1)
		rec[0] = fmt.Sprintf("c%d", i+1)
		for j := 1; j <= c.NumVars; j++ {
			rec[j] = "-"
		}
		for _, l := range cl {
			if l.Neg {
				rec[l.Var] = "0"
			} else {
				rec[l.Var] = "1"
			}
		}
		if err := src.Append(rec); err != nil {
			return nil, err
		}
		// Enumerate the 2^k assignments over the clause's variables and
		// keep the 2^k − 1 models.
		k := len(cl)
		for bits := 0; bits < 1<<k; bits++ {
			truth := make(map[int]bool, k)
			satisfied := false
			for li, l := range cl {
				val := bits&(1<<li) != 0
				truth[l.Var] = val
				if val != l.Neg { // literal satisfied
					satisfied = true
				}
			}
			if !satisfied {
				continue
			}
			trec := rec.Clone()
			for _, l := range cl {
				if truth[l.Var] {
					// Variable true: id leaves the source encoding.
					trec[l.Var] = rec[l.Var]
				} else {
					// Variable false: negation flips it.
					trec[l.Var] = flip(rec[l.Var])
				}
			}
			if err := tgt.Append(trec); err != nil {
				return nil, err
			}
		}
	}
	metas := []metafunc.Meta{metafunc.IdentityMeta{}, metafunc.NegationMeta{}}
	return delta.NewInstance(src, tgt, metas)
}

func flip(v string) string {
	switch v {
	case "0":
		return "1"
	case "1":
		return "0"
	}
	return v
}

// Solution is the outcome of exactly solving a reduced instance.
type Solution struct {
	Explanation *delta.Explanation
	Cost        float64
	// Model[v] is the truth value of variable v+1 extracted from the
	// optimal attribute functions (true ⇔ f_v = id).
	Model []bool
	// Satisfiable reports |S^{E−}| = 0 for the optimal explanation: every
	// clause's source record produced a target record.
	Satisfiable bool
}

// Solve exhaustively searches the 2^d interpretations — each a choice of
// id or negation per variable column — and returns the cheapest valid
// explanation. Exponential by design: the reduction proves hardness, and
// this solver witnesses the equivalence on small formulas.
func Solve(c CNF, alpha float64) (*Solution, error) {
	inst, err := Reduce(c)
	if err != nil {
		return nil, err
	}
	cm := delta.CostModel{Alpha: alpha}
	var best *delta.Explanation
	bestCost := 0.0
	bestBits := 0
	for bits := 0; bits < 1<<c.NumVars; bits++ {
		funcs := make(delta.FuncTuple, c.NumVars+1)
		funcs[0] = metafunc.Identity{}
		for v := 1; v <= c.NumVars; v++ {
			if bits&(1<<(v-1)) != 0 {
				funcs[v] = metafunc.Identity{}
			} else {
				funcs[v] = metafunc.Negation{}
			}
		}
		e, err := delta.Build(inst, funcs)
		if err != nil {
			return nil, err
		}
		cost := cm.Cost(e)
		if best == nil || cost < bestCost {
			best, bestCost, bestBits = e, cost, bits
		}
	}
	model := make([]bool, c.NumVars)
	for v := 0; v < c.NumVars; v++ {
		model[v] = bestBits&(1<<v) != 0
	}
	return &Solution{
		Explanation: best,
		Cost:        bestCost,
		Model:       model,
		Satisfiable: len(best.Deleted) == 0,
	}, nil
}

// Check evaluates the formula under a model.
func (c CNF) Check(model []bool) bool {
	for _, cl := range c.Clauses {
		ok := false
		for _, l := range cl {
			if model[l.Var-1] != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
