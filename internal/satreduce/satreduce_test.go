package satreduce_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"affidavit/internal/satreduce"
	"affidavit/internal/search"
)

func TestFigure2Shape(t *testing.T) {
	// The paper's example reduces to 3 source and 11 target records over
	// 5 attributes (#, v1..v4).
	c := satreduce.Example()
	inst, err := satreduce.Reduce(c)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Source.Len() != 3 {
		t.Errorf("|S| = %d, want 3", inst.Source.Len())
	}
	if inst.Target.Len() != 11 {
		t.Errorf("|T| = %d, want 11", inst.Target.Len())
	}
	if inst.NumAttrs() != 5 {
		t.Errorf("|A| = %d, want 5", inst.NumAttrs())
	}
	// Source encoding: c2 = (¬v1 ∨ v4) → (c2, 0, -, -, 1).
	found := false
	for i := 0; i < inst.Source.Len(); i++ {
		r := inst.Source.Record(i)
		if r[0] == "c2" {
			found = true
			if r[1] != "0" || r[2] != "-" || r[3] != "-" || r[4] != "1" {
				t.Errorf("c2 source = %v, want (c2,0,-,-,1)", r)
			}
		}
	}
	if !found {
		t.Error("no source record for c2")
	}
}

func TestExampleSatisfiable(t *testing.T) {
	c := satreduce.Example()
	sol, err := satreduce.Solve(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Satisfiable {
		t.Fatal("Figure 2 formula is satisfiable; solver disagrees")
	}
	if !c.Check(sol.Model) {
		t.Errorf("extracted model %v does not satisfy the formula", sol.Model)
	}
	if err := sol.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	// Optimal cost: |T^{E+}| = 11 − 3 = 8 unexplained targets, L(F) = 0.
	if got := sol.Cost; got != float64(8*5) {
		t.Errorf("optimal cost = %v, want 40", got)
	}
}

func TestUnsatisfiable(t *testing.T) {
	// (v1) ∧ (¬v1): no interpretation satisfies both clauses.
	c := satreduce.CNF{
		NumVars: 1,
		Clauses: []satreduce.Clause{
			{{Var: 1}},
			{{Var: 1, Neg: true}},
		},
	}
	sol, err := satreduce.Solve(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Satisfiable {
		t.Error("unsatisfiable formula reported satisfiable")
	}
	if len(sol.Explanation.Deleted) != 1 {
		t.Errorf("deleted = %d, want exactly 1 (one clause must fail)",
			len(sol.Explanation.Deleted))
	}
}

func TestValidation(t *testing.T) {
	bad := []satreduce.CNF{
		{NumVars: 0},
		{NumVars: 1, Clauses: []satreduce.Clause{{}}},
		{NumVars: 1, Clauses: []satreduce.Clause{{{Var: 2}}}},
		{NumVars: 1, Clauses: []satreduce.Clause{{{Var: 1}, {Var: 1, Neg: true}}}},
		{NumVars: 4, Clauses: []satreduce.Clause{{{Var: 1}, {Var: 2}, {Var: 3}, {Var: 4}}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid CNF accepted", i)
		}
		if _, err := satreduce.Reduce(c); err == nil {
			t.Errorf("case %d: Reduce accepted invalid CNF", i)
		}
	}
}

// TestAffidavitSolvesReducedInstance runs the actual heuristic search on a
// reduced instance: the search space {id, negation, maps} contains the
// optimum with L(F)=0, and on this small formula the search should find a
// zero-deletion explanation.
func TestAffidavitSolvesReducedInstance(t *testing.T) {
	c := satreduce.CNF{
		NumVars: 2,
		Clauses: []satreduce.Clause{
			{{Var: 1}, {Var: 2}},
			{{Var: 1, Neg: true}},
		},
	}
	inst, err := satreduce.Reduce(c)
	if err != nil {
		t.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Seed = 2
	res, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := satreduce.Solve(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > sol.Cost {
		t.Errorf("heuristic cost %v exceeds optimal %v", res.Cost, sol.Cost)
	}
}

// Property: Solve agrees with a direct DPLL-free truth-table check on
// random small formulas.
func TestQuickSolveMatchesTruthTable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(3) // 2..4 vars
		nc := 1 + rng.Intn(4) // 1..4 clauses
		c := satreduce.CNF{NumVars: nv}
		for i := 0; i < nc; i++ {
			size := 1 + rng.Intn(3)
			perm := rng.Perm(nv)
			var cl satreduce.Clause
			for j := 0; j < size && j < nv; j++ {
				cl = append(cl, satreduce.Literal{Var: perm[j] + 1, Neg: rng.Intn(2) == 0})
			}
			c.Clauses = append(c.Clauses, cl)
		}
		// Truth-table satisfiability.
		wantSat := false
		for bits := 0; bits < 1<<nv; bits++ {
			m := make([]bool, nv)
			for v := 0; v < nv; v++ {
				m[v] = bits&(1<<v) != 0
			}
			if c.Check(m) {
				wantSat = true
				break
			}
		}
		sol, err := satreduce.Solve(c, 0.5)
		if err != nil {
			return false
		}
		if sol.Satisfiable != wantSat {
			return false
		}
		if wantSat && !c.Check(sol.Model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the reduction's target count is Σ (2^k − 1) over clause sizes k.
func TestQuickTargetCount(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 5 {
			return true
		}
		c := satreduce.CNF{NumVars: 3}
		want := 0
		for i, s := range sizes {
			k := int(s%3) + 1
			var cl satreduce.Clause
			for j := 0; j < k; j++ {
				cl = append(cl, satreduce.Literal{Var: j + 1, Neg: (int(s)+i+j)%2 == 0})
			}
			c.Clauses = append(c.Clauses, cl)
			want += (1 << k) - 1
		}
		inst, err := satreduce.Reduce(c)
		if err != nil {
			return false
		}
		return inst.Target.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
