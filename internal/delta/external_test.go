package delta_test

import (
	"context"
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/spill"
)

// TestBuildExternalMatchesSequential: under a budget tiny enough that the
// matching always partitions to disk, BuildCtx reproduces the in-memory
// explanation byte for byte on every registry dataset — sequentially and
// with partitions matched concurrently. Run under -race this also
// exercises the concurrent partition reads.
func TestBuildExternalMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	for _, spec := range datasets.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tab, err := spec.BuildRows(shardRows(spec), 11)
			if err != nil {
				t.Fatal(err)
			}
			p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			for name, funcs := range map[string]delta.FuncTuple{
				"reference": p.Reference.Funcs,
				"identity":  delta.IdentityTuple(p.Inst.NumAttrs()),
			} {
				seq, err := delta.Build(p.Inst, funcs)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					st := &spill.Stats{}
					ext, err := delta.BuildCtx(context.Background(), p.Inst, funcs, delta.BuildOptions{
						Workers:    workers,
						Spill:      spill.NewManager(1<<12, dir),
						SpillStats: st,
					})
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					if err := ext.Validate(); err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					if st.Bytes() == 0 || st.Partitions() == 0 {
						t.Fatalf("%s workers=%d: matching did not spill (bytes=%d parts=%d)",
							name, workers, st.Bytes(), st.Partitions())
					}
					assertSameExplanation(t, seq, ext)
				}
			}
		})
	}
}

// TestBuildExternalCancelled: cancellation propagates out of the external
// matcher instead of falling back to the in-memory path.
func TestBuildExternalCancelled(t *testing.T) {
	ds, err := datasets.Get("ncvoter-1k")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := delta.BuildCtx(ctx, p.Inst, p.Reference.Funcs, delta.BuildOptions{
		Spill: spill.NewManager(1<<12, t.TempDir()),
	}); err == nil {
		t.Error("want context error, got nil")
	}
}
