// Package delta defines the Explain-Table-Delta problem: problem instances
// (Def 3.1), explanations (Def 3.2–3.5), explanation construction from an
// attribute-function tuple (Proposition 3.6), and the minimum-description-
// length cost model (Def 3.8–3.10).
package delta

import (
	"context"
	"fmt"
	"sync"

	"affidavit/internal/metafunc"
	"affidavit/internal/spill"
	"affidavit/internal/table"
)

// Instance is a problem instance I = (S, T, A, F): source and target
// snapshots under a shared schema, plus the meta functions that implicitly
// describe the candidate function set F.
type Instance struct {
	Source *table.Table
	Target *table.Table
	Metas  []metafunc.Meta

	dicts     []*table.Dict // pre-seeded dictionaries; nil = fresh per attribute
	codedOnce sync.Once
	coded     *Coded
}

// NewInstance validates the snapshots share a schema and returns an
// instance. A nil metas slice defaults to metafunc.DefaultMetas().
func NewInstance(source, target *table.Table, metas []metafunc.Meta) (*Instance, error) {
	if !source.Schema().Equal(target.Schema()) {
		return nil, fmt.Errorf("delta: source and target schemas differ: %v vs %v",
			source.Schema().Attrs(), target.Schema().Attrs())
	}
	if metas == nil {
		metas = metafunc.DefaultMetas()
	}
	return &Instance{Source: source, Target: target, Metas: metas}, nil
}

// NewInstanceWithDicts is NewInstance with pre-seeded per-attribute
// dictionaries (one per schema attribute, typically from a table.DictPool):
// the coded view interns both snapshots into the given dictionaries, so
// values already interned by earlier runs keep their codes and are not
// re-interned. Explanations are unaffected by the pre-seeding — nothing in
// the pipeline depends on numeric code order — only the interning work
// changes.
func NewInstanceWithDicts(source, target *table.Table, metas []metafunc.Meta, dicts []*table.Dict) (*Instance, error) {
	inst, err := NewInstance(source, target, metas)
	if err != nil {
		return nil, err
	}
	if len(dicts) != inst.NumAttrs() {
		return nil, fmt.Errorf("delta: got %d dictionaries, schema has %d attributes",
			len(dicts), inst.NumAttrs())
	}
	for a, d := range dicts {
		if d == nil {
			return nil, fmt.Errorf("delta: dictionary for attribute %d is nil", a)
		}
	}
	inst.dicts = dicts
	return inst, nil
}

// Schema returns the shared schema A.
func (in *Instance) Schema() *table.Schema { return in.Source.Schema() }

// NumAttrs returns d = |A|.
func (in *Instance) NumAttrs() int { return in.Source.Schema().Len() }

// Delta returns ∆ = |S| − |T| (Corollary 4.5).
func (in *Instance) Delta() int { return in.Source.Len() - in.Target.Len() }

// Coded is the interned columnar view of an instance: per attribute, one
// dictionary shared by both snapshots plus both value columns as dense
// int32 codes. Equal codes mean equal strings across snapshots, which turns
// the blocking and alignment hot paths into integer operations.
type Coded struct {
	// Dicts holds the per-attribute dictionaries. They keep growing as
	// attribute-function outputs are interned during the search.
	Dicts []*table.Dict
	// Src[a][i] is the code of source record i's value of attribute a;
	// Tgt likewise for the target snapshot.
	Src, Tgt [][]int32
	// Base[a] is Dicts[a].Len() right after both raw columns were interned.
	// Raw snapshot values always have codes < Base[a]; codes ≥ Base[a] are
	// function outputs interned later by this run. With pre-seeded
	// dictionaries (NewInstanceWithDicts) codes < Base[a] may also cover
	// values from earlier runs that this pair never uses — memo tables sized
	// by Base stay correct, just sparser.
	Base []int32
	// Present[a] lists the distinct codes that actually occur in either of
	// attribute a's columns, in first-appearance order. Function memos
	// iterate Present instead of the full [0, Base) range, so per-run apply
	// work is bounded by the pair's own value set even when a long-lived
	// dictionary pool has interned far more over its lifetime.
	Present [][]int32
}

// Coded returns the interned columnar view, building it on first use. The
// view is shared: callers must not mutate the snapshots afterwards.
func (in *Instance) Coded() *Coded {
	in.codedOnce.Do(func() {
		d := in.NumAttrs()
		co := &Coded{
			Dicts:   make([]*table.Dict, d),
			Src:     make([][]int32, d),
			Tgt:     make([][]int32, d),
			Base:    make([]int32, d),
			Present: make([][]int32, d),
		}
		for a := 0; a < d; a++ {
			if in.dicts != nil {
				co.Dicts[a] = in.dicts[a]
			} else {
				co.Dicts[a] = table.NewDict()
			}
			co.Src[a] = in.Source.CodeColumn(a, co.Dicts[a])
			co.Tgt[a] = in.Target.CodeColumn(a, co.Dicts[a])
			co.Base[a] = int32(co.Dicts[a].Len())
			seen := make([]bool, co.Base[a])
			for _, col := range [][]int32{co.Src[a], co.Tgt[a]} {
				for _, c := range col {
					if !seen[c] {
						seen[c] = true
						co.Present[a] = append(co.Present[a], c)
					}
				}
			}
		}
		in.coded = co
	})
	return in.coded
}

// FuncTuple is F^E: one attribute function per attribute, in schema order.
type FuncTuple []metafunc.Func

// Identity returns the all-identity tuple for d attributes.
func IdentityTuple(d int) FuncTuple {
	ft := make(FuncTuple, d)
	for i := range ft {
		ft[i] = metafunc.Identity{}
	}
	return ft
}

// Apply computes F^E(s) for one record (Def 3.4).
func (ft FuncTuple) Apply(r table.Record) table.Record {
	out := make(table.Record, len(r))
	for i, v := range r {
		out[i] = ft[i].Apply(v)
	}
	return out
}

// Params returns L(F^E) = Σ_a ψ(f_a) (Def 3.9).
func (ft FuncTuple) Params() int {
	sum := 0
	for _, f := range ft {
		sum += f.Params()
	}
	return sum
}

// Clone returns a copy of the tuple.
func (ft FuncTuple) Clone() FuncTuple { return append(FuncTuple(nil), ft...) }

// Key returns a canonical identity for the tuple.
func (ft FuncTuple) Key() string {
	var key string
	for _, f := range ft {
		key += "|" + f.Key()
	}
	return key
}

// Explanation is a valid explanation E = (S^{E−}, T^{E+}, F^E) together with
// the alignment its construction produced: CoreSrc[i] is transformed by
// Funcs into target record CoreTgt[i].
type Explanation struct {
	Inst  *Instance
	Funcs FuncTuple

	CoreSrc  []int // core S^E, as indices into Inst.Source
	CoreTgt  []int // core image T^E, aligned pairwise with CoreSrc
	Deleted  []int // S^{E−}
	Inserted []int // T^{E+}
}

// BuildOptions configures BuildCtx.
type BuildOptions struct {
	// Workers shards the multiset matching (and the per-attribute memo
	// construction) across up to this many goroutines. ≤ 1 runs the
	// sequential matcher. For any value the resulting explanation is
	// byte-identical to the sequential one — sharding partitions the
	// matching by key, which the greedy procedure resolves independently
	// per key anyway.
	Workers int
	// Spill, when active, bounds the matching's memory: if the in-memory
	// key map's estimated size exceeds the budget's share, the matching
	// hash-partitions both snapshots' code tuples to temp files and matches
	// one bounded partition at a time (concurrently across partitions when
	// Workers > 1). Explanations are byte-identical to the in-memory path.
	Spill *spill.Manager
	// SpillStats, when non-nil, accumulates the spilled volume.
	SpillStats *spill.Stats
}

// Build constructs a valid explanation from an attribute-function tuple by
// the procedure of Proposition 3.6: a source record joins the core when its
// image under the tuple equals a not-yet-claimed target record; ties are
// broken in source order, making construction deterministic.
//
// Matching runs on the interned columnar view: records are compared as
// packed code tuples, and each function is applied at most once per distinct
// source value of its attribute. Build is BuildCtx without cancellation and
// without sharding.
func Build(inst *Instance, funcs FuncTuple) (*Explanation, error) {
	return BuildCtx(context.Background(), inst, funcs, BuildOptions{})
}

// BuildCtx is Build with cooperative cancellation and optional sharding.
// The conversion checks ctx between coarse phases and periodically inside
// every record scan; once cancelled it returns ctx's error. With
// opts.Workers > 1 the multiset matching is partitioned by a hash of each
// record's (image) code tuple, so each shard replays the sequential greedy
// order on its own keys and the merged result is byte-identical to the
// sequential path.
func BuildCtx(ctx context.Context, inst *Instance, funcs FuncTuple, opts BuildOptions) (*Explanation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(funcs) != inst.NumAttrs() {
		return nil, fmt.Errorf("delta: tuple has %d functions, schema has %d attributes",
			len(funcs), inst.NumAttrs())
	}
	co := inst.Coded()
	memos, err := buildMemos(ctx, co, funcs, opts.Workers)
	if err != nil {
		return nil, err
	}
	var matchOf []int32
	switch {
	case opts.Spill.ShouldSpillMatch(matchEstimate(inst.NumAttrs(), inst.Target.Len())):
		matchOf, err = matchExternal(ctx, inst, co, memos, opts.Workers, opts.Spill, opts.SpillStats)
		if err != nil && ctx.Err() == nil {
			// Disk trouble (not cancellation): the budget is advisory, so
			// fall back to the in-memory matcher rather than fail the run.
			if opts.Workers > 1 {
				matchOf, err = matchSharded(ctx, inst, co, memos, opts.Workers)
			} else {
				matchOf, err = matchSequential(ctx, inst, co, memos)
			}
		}
	case opts.Workers > 1:
		matchOf, err = matchSharded(ctx, inst, co, memos, opts.Workers)
	default:
		matchOf, err = matchSequential(ctx, inst, co, memos)
	}
	if err != nil {
		return nil, err
	}
	e := &Explanation{Inst: inst, Funcs: funcs.Clone()}
	assemble(e, matchOf, inst.Target.Len())
	return e, nil
}

// buildMemos computes the per-attribute apply memos over the raw code
// space: memos[a][c] is the code of funcs[a] applied to value c, or -1 when
// the output is no snapshot value (such an image can never match a target
// record). Only codes present in this pair are filled — the rest are never
// read — so pooled dictionaries holding other runs' values cost nothing
// here. Identity attributes skip the memo entirely. Attributes are
// independent, so workers > 1 fans them out.
func buildMemos(ctx context.Context, co *Coded, funcs FuncTuple, workers int) ([][]int32, error) {
	d := len(funcs)
	memos := make([][]int32, d)
	build := func(a int) {
		if metafunc.IsIdentity(funcs[a]) {
			return
		}
		dict := co.Dicts[a]
		m := make([]int32, co.Base[a])
		for _, c := range co.Present[a] {
			if out, ok := dict.Lookup(funcs[a].Apply(dict.Value(c))); ok {
				m[c] = out
			} else {
				m[c] = -1
			}
		}
		memos[a] = m
	}
	if workers > 1 && d > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for a := 0; a < d; a++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(a int) {
				defer func() {
					<-sem
					wg.Done()
				}()
				if ctx.Err() == nil {
					build(a)
				}
			}(a)
		}
		wg.Wait()
	} else {
		for a := 0; a < d; a++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			build(a)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return memos, nil
}

// imageCode returns source record s's image code of attribute a under the
// memo table (raw code when the attribute is identity).
func imageCode(co *Coded, memos [][]int32, a int, s int) int32 {
	c := co.Src[a][s]
	if memos[a] == nil {
		return c
	}
	return memos[a][c]
}

// buildCancelMask is how many records each matching loop scans between
// context checks.
const buildCancelMask = 8192 - 1

// matchSequential runs the single-threaded greedy multiset matching:
// matchOf[s] is the target record claimed by source s, or −1 when s is
// deleted.
func matchSequential(ctx context.Context, inst *Instance, co *Coded, memos [][]int32) ([]int32, error) {
	d := inst.NumAttrs()
	nTgt := inst.Target.Len()
	// Multiset index of unclaimed target records; positions are the records.
	free := newTupleIndex(co, d, nil, nTgt)
	for t := 0; t < nTgt; t++ {
		if t&buildCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		free.insert(int32(t), free.hashTgt(int32(t)))
	}
	matchOf := make([]int32, inst.Source.Len())
	for s := 0; s < inst.Source.Len(); s++ {
		if s&buildCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		matchOf[s] = -1
		if h, ok := free.hashImg(memos, s); ok {
			matchOf[s] = free.take(memos, s, h)
		}
	}
	return matchOf, nil
}

// assemble turns the match table into the explanation's record partitions:
// core pairs in source order, deletions in source order, insertions in
// target order — exactly the order the sequential scan used to append them.
func assemble(e *Explanation, matchOf []int32, nTgt int) {
	claimed := make([]bool, nTgt)
	for s, t := range matchOf {
		if t >= 0 {
			e.CoreSrc = append(e.CoreSrc, s)
			e.CoreTgt = append(e.CoreTgt, int(t))
			claimed[t] = true
		} else {
			e.Deleted = append(e.Deleted, s)
		}
	}
	for t := 0; t < nTgt; t++ {
		if !claimed[t] {
			e.Inserted = append(e.Inserted, t)
		}
	}
}

// Trivial returns E∅ = (S, T, {id}^d): everything deleted and inserted
// (Section 3.1). It exists for every instance and costs |A|·|T| at α = 0.5.
func Trivial(inst *Instance) *Explanation {
	e := &Explanation{Inst: inst, Funcs: IdentityTuple(inst.NumAttrs())}
	for s := 0; s < inst.Source.Len(); s++ {
		e.Deleted = append(e.Deleted, s)
	}
	for t := 0; t < inst.Target.Len(); t++ {
		e.Inserted = append(e.Inserted, t)
	}
	return e
}

// CoreSize returns |S^E| = |T^E|.
func (e *Explanation) CoreSize() int { return len(e.CoreSrc) }

// Validate checks the validity conditions of Definition 3.5: the core image
// actually reproduces the claimed targets, the alignment is a bijection, and
// core/deleted and core-image/inserted partition S and T.
func (e *Explanation) Validate() error {
	if len(e.CoreSrc) != len(e.CoreTgt) {
		return fmt.Errorf("delta: core has %d sources but %d targets", len(e.CoreSrc), len(e.CoreTgt))
	}
	if len(e.CoreSrc)+len(e.Deleted) != e.Inst.Source.Len() {
		return fmt.Errorf("delta: core+deleted = %d, |S| = %d",
			len(e.CoreSrc)+len(e.Deleted), e.Inst.Source.Len())
	}
	if len(e.CoreTgt)+len(e.Inserted) != e.Inst.Target.Len() {
		return fmt.Errorf("delta: core image+inserted = %d, |T| = %d",
			len(e.CoreTgt)+len(e.Inserted), e.Inst.Target.Len())
	}
	seenS := make([]bool, e.Inst.Source.Len())
	for _, part := range [][]int{e.CoreSrc, e.Deleted} {
		for _, s := range part {
			if seenS[s] {
				return fmt.Errorf("delta: source record %d appears twice", s)
			}
			seenS[s] = true
		}
	}
	seenT := make([]bool, e.Inst.Target.Len())
	for _, part := range [][]int{e.CoreTgt, e.Inserted} {
		for _, t := range part {
			if seenT[t] {
				return fmt.Errorf("delta: target record %d appears twice", t)
			}
			seenT[t] = true
		}
	}
	// Core image check on the interned columns: code equality is string
	// equality (both sides intern into the same dictionaries), and an image
	// missing from a dictionary cannot equal any target value. Each function
	// is applied once per distinct source value instead of once per record.
	co := e.Inst.Coded()
	memos, err := buildMemos(context.Background(), co, e.Funcs, 1)
	if err != nil {
		return err
	}
	for i, s := range e.CoreSrc {
		for a := 0; a < e.Inst.NumAttrs(); a++ {
			if imageCode(co, memos, a, s) != co.Tgt[a][e.CoreTgt[i]] {
				img := e.Funcs.Apply(e.Inst.Source.Record(s))
				return fmt.Errorf("delta: F(source %d) = %v ≠ target %d = %v",
					s, img, e.CoreTgt[i], e.Inst.Target.Record(e.CoreTgt[i]))
			}
		}
	}
	return nil
}

// CostModel carries the cost parameter α ∈ [0,1] of Definition 3.10.
type CostModel struct {
	Alpha float64
}

// DefaultCosts is the paper's standard setting α = 0.5, under which
// c(E) = L(T^{E+}) + L(F^E).
var DefaultCosts = CostModel{Alpha: 0.5}

// TrivialCost returns c(E∅) for a d-attribute instance with nTgt target
// records in closed form: the trivial explanation inserts every target
// record (L = d·nTgt) with an all-identity tuple (L(F) = 0), so
// c = 2α·d·nTgt. Equals Cost(Trivial(inst)) without building E∅.
func (cm CostModel) TrivialCost(d, nTgt int) float64 {
	return 2 * cm.Alpha * float64(d*nTgt)
}

// InsertionLength returns L(T^{E+}) = |A| · |T^{E+}| (Def 3.8).
func (e *Explanation) InsertionLength() int {
	return e.Inst.NumAttrs() * len(e.Inserted)
}

// FunctionLength returns L(F^E) (Def 3.9).
func (e *Explanation) FunctionLength() int { return e.Funcs.Params() }

// Cost computes c(E) = 2α·L(T^{E+}) + 2(1−α)·L(F^E) (Def 3.10).
func (cm CostModel) Cost(e *Explanation) float64 {
	return 2*cm.Alpha*float64(e.InsertionLength()) +
		2*(1-cm.Alpha)*float64(e.FunctionLength())
}
