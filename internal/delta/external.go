package delta

import (
	"context"
	"encoding/binary"
	"sync"

	"affidavit/internal/spill"
)

// External (grace-hash) matching: the end-state conversion's greedy
// multiset matching normally holds the whole target snapshot's key map in
// memory. Under a memory budget the matching streams instead — every
// target tuple and every source image tuple is hash-partitioned to temp
// files keyed by its packed code tuple, and each partition is matched
// independently with a map bounded by the partition's share of the budget.
// Keys partition the greedy procedure (see shard.go), and within one
// partition records replay in ascending record order, so the union of
// partition matchings is exactly the sequential matching: explanations are
// byte-identical to the in-memory path.

// matchEstimate approximates the in-memory matcher's peak: one key-map
// entry (string header + packed codes + slice + bucket overhead) per
// target record.
func matchEstimate(d, nTgt int) int64 {
	return int64(nTgt) * int64(88+4*d)
}

// matchExternal computes matchOf with disk-partitioned matching. parts and
// partition assignment derive from the same fnv1a64 tuple hash the sharded
// matcher uses. Partitions are independent, so with workers > 1 they match
// concurrently — each writes a disjoint slice of matchOf.
func matchExternal(ctx context.Context, inst *Instance, co *Coded, memos [][]int32, workers int, m *spill.Manager, st *spill.Stats) ([]int32, error) {
	d := inst.NumAttrs()
	nSrc, nTgt := inst.Source.Len(), inst.Target.Len()
	parts := m.MatchPartitions(matchEstimate(d, nTgt))

	tp, err := m.NewPager(parts, 4+4*d, st)
	if err != nil {
		return nil, err
	}
	defer tp.Close()
	sp, err := m.NewPager(parts, 4+4*d, st)
	if err != nil {
		return nil, err
	}
	defer sp.Close()

	// Phase 1: scatter (record index, packed code tuple) to the tuple's
	// partition; the packed bytes double as the match key.
	rec := make([]byte, 4+4*d)
	scatter := func(pg *spill.Pager, i int, code func(a int) int32) (bool, error) {
		h := uint64(fnvOffset64)
		for a := 0; a < d; a++ {
			c := code(a)
			if c < 0 {
				return false, nil
			}
			h = (h ^ uint64(uint32(c))) * fnvPrime64
			binary.LittleEndian.PutUint32(rec[4+4*a:], uint32(c))
		}
		binary.LittleEndian.PutUint32(rec, uint32(i))
		return true, pg.Write(int(h%uint64(parts)), rec)
	}
	for t := 0; t < nTgt; t++ {
		if t&buildCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if _, err := scatter(tp, t, func(a int) int32 { return co.Tgt[a][t] }); err != nil {
			return nil, err
		}
	}
	matchOf := make([]int32, nSrc)
	for s := 0; s < nSrc; s++ {
		if s&buildCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		matchOf[s] = -1
		if _, err := scatter(sp, s, func(a int) int32 { return imageCode(co, memos, a, s) }); err != nil {
			return nil, err
		}
	}
	if err := tp.Flush(); err != nil {
		return nil, err
	}
	if err := sp.Flush(); err != nil {
		return nil, err
	}

	// Phase 2: match partition by partition. One partition's key map is
	// ~1/parts of the in-memory matcher's, which is what the budget bought.
	matchPart := func(part int) error {
		free := make(map[string][]int32)
		n := 0
		err := tp.ReadPart(part, func(rec []byte) error {
			if n&buildCancelMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			n++
			t := int32(binary.LittleEndian.Uint32(rec))
			k := string(rec[4:])
			free[k] = append(free[k], t)
			return nil
		})
		if err != nil {
			return err
		}
		return sp.ReadPart(part, func(rec []byte) error {
			if n&buildCancelMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			n++
			s := int32(binary.LittleEndian.Uint32(rec))
			if q := free[string(rec[4:])]; len(q) > 0 {
				matchOf[s] = q[0]
				free[string(rec[4:])] = q[1:]
			}
			return nil
		})
	}
	if workers > 1 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		sem := make(chan struct{}, workers)
		for part := 0; part < parts; part++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(part int) {
				defer func() {
					<-sem
					wg.Done()
				}()
				if err := matchPart(part); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(part)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	} else {
		for part := 0; part < parts; part++ {
			if err := matchPart(part); err != nil {
				return nil, err
			}
		}
	}
	return matchOf, nil
}
