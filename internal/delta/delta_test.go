package delta_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

func TestNewInstanceSchemaMismatch(t *testing.T) {
	a := table.MustFromRows(table.MustSchema("x"), nil)
	b := table.MustFromRows(table.MustSchema("y"), nil)
	if _, err := delta.NewInstance(a, b, nil); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestInstanceBasics(t *testing.T) {
	inst := fixture.Instance()
	if inst.NumAttrs() != 7 {
		t.Errorf("NumAttrs = %d, want 7", inst.NumAttrs())
	}
	if inst.Delta() != 1 {
		t.Errorf("Delta = %d, want |S|-|T| = 17-16 = 1", inst.Delta())
	}
}

func TestIdentityTuple(t *testing.T) {
	ft := delta.IdentityTuple(3)
	if len(ft) != 3 || ft.Params() != 0 {
		t.Error("identity tuple wrong")
	}
	r := table.Record{"a", "b", "c"}
	if !ft.Apply(r).Equal(r) {
		t.Error("identity tuple changed record")
	}
}

func TestFuncTupleKeyAndClone(t *testing.T) {
	ft := delta.FuncTuple{metafunc.Identity{}, metafunc.Constant{C: "x"}}
	ft2 := ft.Clone()
	if ft.Key() != ft2.Key() {
		t.Error("clone key differs")
	}
	ft2[0] = metafunc.Upper{}
	if ft.Key() == ft2.Key() {
		t.Error("mutating clone affected original key")
	}
}

// TestRunningExampleE1 replays the cost arithmetic of Section 3.1 on the
// paper's explanation E1.
func TestRunningExampleE1(t *testing.T) {
	e := fixture.ReferenceExplanation()
	if err := e.Validate(); err != nil {
		t.Fatalf("E1 invalid: %v", err)
	}
	if e.CoreSize() != 13 {
		t.Errorf("core size = %d, want 13", e.CoreSize())
	}
	inst := e.Inst
	var deleted []string
	for _, s := range e.Deleted {
		deleted = append(deleted, inst.Source.Value(s, fixture.ID1))
	}
	wantDel := fixture.DeletedIDs()
	if len(deleted) != len(wantDel) {
		t.Fatalf("deleted = %v, want %v", deleted, wantDel)
	}
	delSet := map[string]bool{}
	for _, d := range deleted {
		delSet[d] = true
	}
	for _, w := range wantDel {
		if !delSet[w] {
			t.Errorf("record %s should be deleted; got %v", w, deleted)
		}
	}
	var inserted []string
	for _, ti := range e.Inserted {
		inserted = append(inserted, inst.Target.Value(ti, fixture.ID1))
	}
	insSet := map[string]bool{}
	for _, i := range inserted {
		insSet[i] = true
	}
	for _, w := range fixture.InsertedIDs() {
		if !insSet[w] {
			t.Errorf("record %s should be inserted; got %v", w, inserted)
		}
	}
	if got := e.InsertionLength(); got != 21 {
		t.Errorf("L(T+) = %d, want 7·3 = 21", got)
	}
	if got := e.FunctionLength(); got != 56 {
		t.Errorf("L(F) = %d, want 56", got)
	}
	if got := delta.DefaultCosts.Cost(e); got != fixture.ReferenceCost {
		t.Errorf("c(E1) = %v, want %d", got, fixture.ReferenceCost)
	}
}

// TestFigure1SampleApplication replays the worked transformation of the
// first source record: F^{E1}(S01 …) = (T07, 0006, 20130416, A, 80, k $, IBM).
func TestFigure1SampleApplication(t *testing.T) {
	ft := fixture.ReferenceFuncs()
	got := ft.Apply(table.Record{"S01", "0000", "20130416", "A", "80000", "USD", "IBM"})
	want := table.Record{"T07", "0006", "20130416", "A", "80", "k $", "IBM"}
	if !got.Equal(want) {
		t.Errorf("F(S01) = %v, want %v", got, want)
	}
}

func TestTrivialExplanation(t *testing.T) {
	inst := fixture.Instance()
	e := delta.Trivial(inst)
	if err := e.Validate(); err != nil {
		t.Fatalf("trivial explanation invalid: %v", err)
	}
	if e.CoreSize() != 0 || len(e.Deleted) != 17 || len(e.Inserted) != 16 {
		t.Error("trivial explanation shape wrong")
	}
	if got := delta.DefaultCosts.Cost(e); got != fixture.TrivialCost {
		t.Errorf("c(E∅) = %v, want %d", got, fixture.TrivialCost)
	}
}

func TestBuildRejectsWrongWidth(t *testing.T) {
	inst := fixture.Instance()
	if _, err := delta.Build(inst, delta.IdentityTuple(3)); err == nil {
		t.Error("wrong-width tuple accepted")
	}
}

func TestBuildBijectionOnDuplicates(t *testing.T) {
	// Two identical sources, one matching target: only one may claim it.
	s := table.MustSchema("v")
	src := table.MustFromRows(s, []table.Record{{"a"}, {"a"}})
	tgt := table.MustFromRows(s, []table.Record{{"a"}})
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := delta.Build(inst, delta.IdentityTuple(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.CoreSize() != 1 || len(e.Deleted) != 1 || len(e.Inserted) != 0 {
		t.Errorf("duplicate handling wrong: core=%d del=%d ins=%d",
			e.CoreSize(), len(e.Deleted), len(e.Inserted))
	}
	// And symmetric: one source, two identical targets.
	inst2, _ := delta.NewInstance(tgt, src, nil)
	e2, _ := delta.Build(inst2, delta.IdentityTuple(1))
	if e2.CoreSize() != 1 || len(e2.Inserted) != 1 {
		t.Error("duplicate targets handled wrong")
	}
}

func TestAlphaWeighting(t *testing.T) {
	e := fixture.ReferenceExplanation()
	// α = 1: only insertions count, doubled.
	if got := (delta.CostModel{Alpha: 1}).Cost(e); got != 42 {
		t.Errorf("α=1 cost = %v, want 2·21", got)
	}
	// α = 0: only functions count, doubled.
	if got := (delta.CostModel{Alpha: 0}).Cost(e); got != 112 {
		t.Errorf("α=0 cost = %v, want 2·56", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	e := fixture.ReferenceExplanation()
	e.CoreTgt[0], e.CoreTgt[1] = e.CoreTgt[1], e.CoreTgt[0]
	if err := e.Validate(); err == nil {
		t.Error("swapped alignment passed validation")
	}
	e2 := fixture.ReferenceExplanation()
	e2.Deleted = append(e2.Deleted, e2.CoreSrc[0])
	if err := e2.Validate(); err == nil {
		t.Error("double-counted source passed validation")
	}
	e3 := fixture.ReferenceExplanation()
	e3.Inserted = e3.Inserted[:len(e3.Inserted)-1]
	if err := e3.Validate(); err == nil {
		t.Error("missing insertion passed validation")
	}
	e4 := fixture.ReferenceExplanation()
	e4.CoreTgt = e4.CoreTgt[:len(e4.CoreTgt)-1]
	if err := e4.Validate(); err == nil {
		t.Error("ragged core passed validation")
	}
}

// Property: Build always yields a valid explanation, whatever tuple we
// hand it (here: random constant/identity mixes over a small instance).
func TestQuickBuildAlwaysValid(t *testing.T) {
	s := table.MustSchema("a", "b")
	f := func(vals [4]string, useConst bool) bool {
		src := table.MustFromRows(s, []table.Record{{vals[0], vals[1]}})
		tgt := table.MustFromRows(s, []table.Record{{vals[2], vals[3]}})
		inst, err := delta.NewInstance(src, tgt, nil)
		if err != nil {
			return false
		}
		ft := delta.IdentityTuple(2)
		if useConst {
			ft[0] = metafunc.Constant{C: vals[2]}
		}
		e, err := delta.Build(inst, ft)
		if err != nil {
			return false
		}
		return e.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cost is monotone in the number of insertions for fixed funcs.
func TestQuickCostMonotoneInInsertions(t *testing.T) {
	inst := fixture.Instance()
	ref := fixture.ReferenceExplanation()
	triv := delta.Trivial(inst)
	if delta.DefaultCosts.Cost(ref) >= delta.DefaultCosts.Cost(triv) {
		t.Error("reference explanation should beat trivial")
	}
}

// TestNewInstanceWithDicts: pre-seeded dictionaries put the coded view in
// the pool's code space without changing which records group together.
func TestNewInstanceWithDicts(t *testing.T) {
	inst := fixture.Instance()
	pool := table.NewDictPool()
	dicts := pool.DictsFor(inst.Schema())
	// Pre-pollute the pool so pooled codes differ from fresh ones.
	for _, d := range dicts {
		d.Code("previously-interned")
	}
	pooled, err := delta.NewInstanceWithDicts(inst.Source, inst.Target, inst.Metas, dicts)
	if err != nil {
		t.Fatal(err)
	}
	fresh := inst.Coded()
	co := pooled.Coded()
	for a := range co.Dicts {
		if co.Dicts[a] != dicts[a] {
			t.Fatalf("attr %d: coded view not using the pooled dict", a)
		}
		if co.Base[a] <= fresh.Base[a] {
			t.Errorf("attr %d: pooled base %d not above fresh base %d", a, co.Base[a], fresh.Base[a])
		}
		// Same strings behind the codes, record by record.
		for i, c := range co.Src[a] {
			if co.Dicts[a].Value(c) != fresh.Dicts[a].Value(fresh.Src[a][i]) {
				t.Fatalf("attr %d source record %d: value mismatch", a, i)
			}
		}
	}
	// Explanations built over the pooled view equal fresh ones.
	ft := delta.IdentityTuple(pooled.NumAttrs())
	a, err := delta.Build(pooled, ft)
	if err != nil {
		t.Fatal(err)
	}
	b, err := delta.Build(inst, ft)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.CoreSrc) != fmt.Sprint(b.CoreSrc) ||
		fmt.Sprint(a.Deleted) != fmt.Sprint(b.Deleted) ||
		fmt.Sprint(a.Inserted) != fmt.Sprint(b.Inserted) {
		t.Error("pooled Build differs from fresh Build")
	}
}

// TestNewInstanceWithDictsValidation: the dict set must match the schema.
func TestNewInstanceWithDictsValidation(t *testing.T) {
	inst := fixture.Instance()
	if _, err := delta.NewInstanceWithDicts(inst.Source, inst.Target, nil,
		[]*table.Dict{table.NewDict()}); err == nil {
		t.Fatal("want error for wrong dict count")
	}
	dicts := make([]*table.Dict, inst.NumAttrs())
	if _, err := delta.NewInstanceWithDicts(inst.Source, inst.Target, nil, dicts); err == nil {
		t.Fatal("want error for nil dict entry")
	}
}
