package delta_test

import (
	"context"
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
)

// shardRows caps dataset sizes so the full-registry sweep stays fast under
// the race detector.
func shardRows(spec datasets.Spec) int {
	rows := spec.Rows
	if rows > 600 {
		rows = 600
	}
	if spec.DataAttrs > 40 && rows > 150 {
		rows = 150
	}
	return rows
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func assertSameExplanation(t *testing.T, seq, par *delta.Explanation) {
	t.Helper()
	if !equalIntSlices(seq.CoreSrc, par.CoreSrc) || !equalIntSlices(seq.CoreTgt, par.CoreTgt) {
		t.Error("core alignments differ")
	}
	if !equalIntSlices(seq.Deleted, par.Deleted) {
		t.Errorf("deletions differ: %v vs %v", seq.Deleted, par.Deleted)
	}
	if !equalIntSlices(seq.Inserted, par.Inserted) {
		t.Errorf("insertions differ: %v vs %v", seq.Inserted, par.Inserted)
	}
	if seq.Funcs.Key() != par.Funcs.Key() {
		t.Error("function tuples differ")
	}
}

// TestBuildShardedMatchesSequential is the sharded conversion's acceptance
// check: on every registry dataset, Build with Workers > 1 partitions the
// multiset matching by key and must reproduce the sequential explanation
// byte for byte — same core alignment, deletions and insertions — for the
// reference tuple (non-identity functions included) and for the
// all-identity tuple. Run under -race this also exercises the concurrent
// shard scans.
func TestBuildShardedMatchesSequential(t *testing.T) {
	for _, spec := range datasets.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tab, err := spec.BuildRows(shardRows(spec), 11)
			if err != nil {
				t.Fatal(err)
			}
			p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			for name, funcs := range map[string]delta.FuncTuple{
				"reference": p.Reference.Funcs,
				"identity":  delta.IdentityTuple(p.Inst.NumAttrs()),
			} {
				seq, err := delta.Build(p.Inst, funcs)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 3, 8} {
					par, err := delta.BuildCtx(context.Background(), p.Inst, funcs,
						delta.BuildOptions{Workers: workers})
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					if err := par.Validate(); err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					assertSameExplanation(t, seq, par)
				}
			}
		})
	}
}

// TestBuildCtxCancelled: a cancelled context aborts the conversion with the
// context's error, sequentially and sharded.
func TestBuildCtxCancelled(t *testing.T) {
	ds, err := datasets.Get("ncvoter-1k")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := delta.BuildCtx(ctx, p.Inst, p.Reference.Funcs,
			delta.BuildOptions{Workers: workers}); err == nil {
			t.Errorf("workers=%d: want context error, got nil", workers)
		}
	}
}

// TestBuildShardedEmptyAndTiny: degenerate shapes — empty snapshots and a
// worker count far above the record count — stay byte-identical.
func TestBuildShardedEmptyAndTiny(t *testing.T) {
	ds, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.BuildRows(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := delta.Build(p.Inst, p.Reference.Funcs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := delta.BuildCtx(context.Background(), p.Inst, p.Reference.Funcs,
		delta.BuildOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	assertSameExplanation(t, seq, par)
}
