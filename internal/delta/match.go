package delta

// tupleIndex is the open-addressing multiset index behind the greedy
// matching: target records keyed by their code tuples, each bucket an
// arrival-ordered list of the targets sharing one tuple. It replaces the
// map[string][]int32 of packed-key strings — keys stay as the int32 code
// columns they already are, bucket membership is verified by comparing a
// bucket representative's codes elementwise, and list links live in one
// flat next array, so indexing a snapshot allocates four flat arrays
// instead of one string key plus map and slice overhead per distinct tuple.
type tupleIndex struct {
	co     *Coded
	d      int
	bucket []int32 // position → target record; nil = identity (position IS the record)
	rep    []int32 // slot → position of the bucket's representative; -1 = empty slot
	head   []int32 // slot → position of the first unclaimed target; -1 = exhausted
	tail   []int32
	next   []int32 // position → next position with an equal tuple; -1 = end
	mask   uint32
}

// newTupleIndex sizes the index for n targets; bucket maps positions to
// target records (nil when positions are the records themselves).
func newTupleIndex(co *Coded, d int, bucket []int32, n int) *tupleIndex {
	size := 16
	for size < 2*n {
		size <<= 1
	}
	m := &tupleIndex{
		co:     co,
		d:      d,
		bucket: bucket,
		rep:    make([]int32, size),
		head:   make([]int32, size),
		tail:   make([]int32, size),
		next:   make([]int32, n),
		mask:   uint32(size - 1),
	}
	for i := range m.rep {
		m.rep[i] = -1
	}
	return m
}

func (m *tupleIndex) rec(pos int32) int32 {
	if m.bucket == nil {
		return pos
	}
	return m.bucket[pos]
}

// hashTgt hashes target record t's code tuple (fnv1a over the codes, the
// same mixing the shard router uses).
func (m *tupleIndex) hashTgt(t int32) uint64 {
	h := uint64(fnvOffset64)
	for a := 0; a < m.d; a++ {
		h = (h ^ uint64(uint32(m.co.Tgt[a][t]))) * fnvPrime64
	}
	return h
}

// hashImg hashes source record s's image tuple; ok is false when any image
// code leaves the snapshot value set (such a source can never match).
func (m *tupleIndex) hashImg(memos [][]int32, s int) (uint64, bool) {
	h := uint64(fnvOffset64)
	for a := 0; a < m.d; a++ {
		c := imageCode(m.co, memos, a, s)
		if c < 0 {
			return 0, false
		}
		h = (h ^ uint64(uint32(c))) * fnvPrime64
	}
	return h, true
}

func (m *tupleIndex) equalTgt(t1, t2 int32) bool {
	for a := 0; a < m.d; a++ {
		if m.co.Tgt[a][t1] != m.co.Tgt[a][t2] {
			return false
		}
	}
	return true
}

func (m *tupleIndex) equalImg(t int32, memos [][]int32, s int) bool {
	for a := 0; a < m.d; a++ {
		if m.co.Tgt[a][t] != imageCode(m.co, memos, a, s) {
			return false
		}
	}
	return true
}

// insert appends position pos to its tuple's bucket. h must be hashTgt of
// the position's record (precomputed hashes from the shard router are fine:
// the mixing is identical).
func (m *tupleIndex) insert(pos int32, h uint64) {
	t := m.rec(pos)
	m.next[pos] = -1
	i := uint32(h) & m.mask
	for {
		r := m.rep[i]
		if r < 0 {
			m.rep[i], m.head[i], m.tail[i] = pos, pos, pos
			return
		}
		if m.equalTgt(m.rec(r), t) {
			m.next[m.tail[i]] = pos
			m.tail[i] = pos
			return
		}
		i = (i + 1) & m.mask
	}
}

// take claims and returns the earliest unclaimed target whose tuple equals
// source s's image tuple under memos, or -1. h must be s's image hash.
func (m *tupleIndex) take(memos [][]int32, s int, h uint64) int32 {
	i := uint32(h) & m.mask
	for {
		r := m.rep[i]
		if r < 0 {
			return -1
		}
		if m.equalImg(m.rec(r), memos, s) {
			hd := m.head[i]
			if hd < 0 {
				return -1
			}
			m.head[i] = m.next[hd]
			return m.rec(hd)
		}
		i = (i + 1) & m.mask
	}
}
