package delta

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The sharded end-state conversion. The greedy multiset matching of
// Proposition 3.6 interacts only within equal keys: source record s (in
// source order) claims the earliest unclaimed target record whose code
// tuple equals s's image tuple. Keys therefore partition the problem — the
// claim order for key K depends only on the sources whose image is K and
// the targets whose tuple is K, each in their own record order. Routing
// every record to a shard by a hash of its (image) code tuple keeps all
// records that could ever match in one shard; each shard replays the
// sequential greedy order on its own keys, and the union of shard matches
// is exactly the sequential matching — byte-identical explanations for any
// worker count.

// fnv1a64 constants for hashing code tuples into shards.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// matchSharded is the parallel counterpart of matchSequential: it computes
// the same matchOf table with the matching partitioned by key hash across
// up to `workers` shards. Phases:
//
//  1. (parallel over record ranges) hash every target tuple and every
//     source image tuple; sources whose image leaves the snapshot value
//     set are marked unmatchable;
//  2. (sequential) record indices are bucketed per shard, preserving
//     ascending order within each bucket;
//  3. (parallel over shards) each shard builds its private
//     unclaimed-target multiset index from its bucket and greedily matches
//     its sources in ascending order — writes to matchOf never race
//     because every source belongs to exactly one shard;
//  4. the caller assembles the partitions with the same sequential pass
//     the single-threaded matcher uses.
func matchSharded(ctx context.Context, inst *Instance, co *Coded, memos [][]int32, workers int) ([]int32, error) {
	d := inst.NumAttrs()
	nSrc, nTgt := inst.Source.Len(), inst.Target.Len()

	// Shard count only affects load balance, never the result; shards
	// beyond the core count or the key-bearing record count are pure
	// overhead.
	shards := workers
	if max := runtime.GOMAXPROCS(0); shards > max {
		shards = max
	}
	if max := nTgt/2 + 1; shards > max {
		shards = max
	}
	if shards < 1 {
		shards = 1
	}

	srcHash := make([]uint64, nSrc)
	srcOK := make([]bool, nSrc)
	tgtHash := make([]uint64, nTgt)
	var cancelled atomic.Bool

	// Phase 1: hash code tuples, partitioned by contiguous record ranges.
	hashRange := func(n int, task func(i int)) {
		chunk := (n + shards - 1) / shards
		if chunk < 1 {
			chunk = 1
		}
		var wg sync.WaitGroup
		for off := 0; off < n; off += chunk {
			end := off + chunk
			if end > n {
				end = n
			}
			wg.Add(1)
			go func(off, end int) {
				defer wg.Done()
				for i := off; i < end; i++ {
					if i&buildCancelMask == 0 && ctx.Err() != nil {
						cancelled.Store(true)
						return
					}
					task(i)
				}
			}(off, end)
		}
		wg.Wait()
	}
	hashRange(nTgt, func(t int) {
		h := uint64(fnvOffset64)
		for a := 0; a < d; a++ {
			h = (h ^ uint64(uint32(co.Tgt[a][t]))) * fnvPrime64
		}
		tgtHash[t] = h
	})
	hashRange(nSrc, func(s int) {
		h := uint64(fnvOffset64)
		ok := true
		for a := 0; a < d; a++ {
			c := imageCode(co, memos, a, s)
			if c < 0 {
				ok = false
				break
			}
			h = (h ^ uint64(uint32(c))) * fnvPrime64
		}
		srcHash[s] = h
		srcOK[s] = ok
	})
	if cancelled.Load() {
		return nil, ctx.Err()
	}

	// Phase 2: bucket record indices per shard (ascending within each
	// bucket — the order the greedy matching must replay), so each shard
	// only ever visits its own records.
	w := uint64(shards)
	tgtByShard := make([][]int32, shards)
	srcByShard := make([][]int32, shards)
	for t := 0; t < nTgt; t++ {
		if t&buildCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sh := tgtHash[t] % w
		tgtByShard[sh] = append(tgtByShard[sh], int32(t))
	}
	matchOf := make([]int32, nSrc)
	for s := 0; s < nSrc; s++ {
		if s&buildCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		matchOf[s] = -1
		if srcOK[s] {
			sh := srcHash[s] % w
			srcByShard[sh] = append(srcByShard[sh], int32(s))
		}
	}

	// Phase 3: per-shard greedy matching over the buckets. matchOf starts
	// all-deleted; shards fill in their own sources' claims. The tuple
	// hashes from phase 1 are reused for the per-shard indexes — the index
	// uses the same fnv1a mixing as the shard router.
	var wg sync.WaitGroup
	for shard := 0; shard < shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			bucket := tgtByShard[shard]
			free := newTupleIndex(co, d, bucket, len(bucket))
			for i, t := range bucket {
				if i&buildCancelMask == 0 && ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				free.insert(int32(i), tgtHash[t])
			}
			for i, s := range srcByShard[shard] {
				if i&buildCancelMask == 0 && ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				matchOf[s] = free.take(memos, int(s), srcHash[s])
			}
		}(shard)
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	return matchOf, nil
}
